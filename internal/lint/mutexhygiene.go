package lint

import (
	"go/ast"
	"go/types"
)

// mutexHygieneCheck walks every function and verifies, structurally, that a
// sync.Mutex/RWMutex acquired there is released on every return path:
// either the next matching action is a deferred Unlock, or every return
// statement reachable inside the critical section is preceded by an inline
// Unlock on its path. It additionally flags channel sends/receives, select
// statements, time.Sleep and WaitGroup.Wait executed while an RWMutex write
// lock is held — the classic self-deadlock shape under reader pressure.
//
// The analysis is deliberately "lite": it tracks lock state through
// straight-line code, if/else, loops and switches with a three-valued state
// (locked / maybe / unlocked) and never reports in the "maybe" state, so
// unusual-but-correct code earns silence rather than noise. Lock helpers
// that intentionally hand a held lock to their caller are annotated with
// //lint:ignore mutexhygiene <reason>.
func mutexHygieneCheck() *Check {
	c := &Check{
		Name: "mutexhygiene",
		Doc:  "Lock without Unlock on every return path; blocking ops under an RWMutex write lock",
	}
	c.Run = func(p *Pass) {
		for _, pkg := range p.Module.Packages {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					var body *ast.BlockStmt
					switch fn := n.(type) {
					case *ast.FuncDecl:
						body = fn.Body
					case *ast.FuncLit:
						body = fn.Body
					default:
						return true
					}
					if body != nil {
						a := &mutexAnalyzer{pass: p, pkg: pkg, funcBody: body}
						a.scanList(body.List)
					}
					return true
				})
			}
		}
	}
	return c
}

// lockState is the three-valued lock tracking state.
type lockState int

const (
	stLocked lockState = iota
	stMaybe
	stUnlocked
)

func mergeState(a, b lockState) lockState {
	if a == b {
		return a
	}
	return stMaybe
}

// lockRef identifies one acquisition: the receiver expression text plus
// whether it was a read lock and whether the mutex is an RWMutex.
type lockRef struct {
	recv string
	read bool // RLock (vs Lock)
	rw   bool // receiver is a sync.RWMutex
}

type mutexAnalyzer struct {
	pass     *Pass
	pkg      *Package
	funcBody *ast.BlockStmt
}

// syncLockMethod resolves call to a sync lock-family method and returns the
// receiver text, method name and whether the receiver is an RWMutex.
func (a *mutexAnalyzer) syncLockMethod(call *ast.CallExpr) (recv, method string, rw bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	obj, isFunc := a.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFunc || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false, false
	}
	switch obj.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false, false
	}
	if s, hasSel := a.pkg.Info.Selections[sel]; hasSel {
		rw = typeNameIs(s.Recv(), "sync", "RWMutex")
	}
	return types.ExprString(sel.X), obj.Name(), rw, true
}

func typeNameIs(t types.Type, pkgPath, name string) bool {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// stmtLock returns the lockRef when stmt is `recv.Lock()` or `recv.RLock()`.
func (a *mutexAnalyzer) stmtLock(stmt ast.Stmt) (lockRef, ast.Expr, bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return lockRef{}, nil, false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return lockRef{}, nil, false
	}
	recv, method, rw, ok := a.syncLockMethod(call)
	if !ok || (method != "Lock" && method != "RLock") {
		return lockRef{}, nil, false
	}
	return lockRef{recv: recv, read: method == "RLock", rw: rw}, call.Fun, true
}

// isUnlockCall reports whether call releases ref (Unlock pairs with Lock,
// RUnlock with RLock).
func (a *mutexAnalyzer) isUnlockCall(call *ast.CallExpr, ref lockRef) bool {
	recv, method, _, ok := a.syncLockMethod(call)
	if !ok || recv != ref.recv {
		return false
	}
	if ref.read {
		return method == "RUnlock"
	}
	return method == "Unlock"
}

// stmtUnlocks reports whether stmt is an inline `recv.Unlock()`.
func (a *mutexAnalyzer) stmtUnlocks(stmt ast.Stmt, ref lockRef) bool {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return false
	}
	call, isCall := es.X.(*ast.CallExpr)
	return isCall && a.isUnlockCall(call, ref)
}

// stmtDefersUnlock reports whether stmt defers a release of ref, either
// directly (`defer mu.Unlock()`) or through a function literal whose body
// releases it.
func (a *mutexAnalyzer) stmtDefersUnlock(stmt ast.Stmt, ref lockRef) bool {
	ds, isDefer := stmt.(*ast.DeferStmt)
	if !isDefer {
		return false
	}
	if a.isUnlockCall(ds.Call, ref) {
		return true
	}
	if lit, isLit := ds.Call.Fun.(*ast.FuncLit); isLit {
		return a.containsUnlock(lit.Body, ref)
	}
	return false
}

// containsUnlock reports whether any release of ref appears under n
// (function literals included: a deferred closure is a common release
// site).
func (a *mutexAnalyzer) containsUnlock(n ast.Node, ref lockRef) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, isCall := n.(*ast.CallExpr); isCall && a.isUnlockCall(call, ref) {
			found = true
		}
		return true
	})
	return found
}

// scanList analyzes one statement list: every Lock acquired at this level
// is traced forward, and nested statement lists are scanned recursively.
func (a *mutexAnalyzer) scanList(stmts []ast.Stmt) {
	for i, stmt := range stmts {
		if ref, at, ok := a.stmtLock(stmt); ok {
			a.traceLock(stmts[i+1:], ref, at)
		}
		a.scanNested(stmt)
	}
}

// scanNested recurses into statement lists hanging off stmt so locks taken
// inside branches and loops are traced in their own scope.
func (a *mutexAnalyzer) scanNested(stmt ast.Stmt) {
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		a.scanList(s.List)
	case *ast.IfStmt:
		a.scanList(s.Body.List)
		if s.Else != nil {
			a.scanNested(s.Else)
		}
	case *ast.ForStmt:
		a.scanList(s.Body.List)
	case *ast.RangeStmt:
		a.scanList(s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				a.scanList(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				a.scanList(cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				a.scanList(cc.Body)
			}
		}
	case *ast.LabeledStmt:
		a.scanNested(s.Stmt)
	}
}

// traceLock follows one acquisition through the statements after it.
func (a *mutexAnalyzer) traceLock(rest []ast.Stmt, ref lockRef, at ast.Expr) {
	// Deferred release at this level: the critical section runs to function
	// exit. The only hazard left is a return squeezed between Lock and the
	// defer installation.
	for j, stmt := range rest {
		if a.stmtDefersUnlock(stmt, ref) {
			for _, between := range rest[:j] {
				a.reportReturns(between, ref)
			}
			if !ref.read && ref.rw {
				for _, between := range rest[:j] {
					a.reportBlocking(between, ref)
				}
			}
			return
		}
	}

	// No release anywhere in the function: either the lock intentionally
	// escapes (annotate it) or it is a leak.
	if !a.releasedSomewhere(ref) {
		a.pass.Reportf(at.Pos(), "%s.%s() is never released in this function (deferred or inline Unlock missing; annotate if the lock intentionally escapes)",
			ref.recv, lockMethodName(ref))
		return
	}

	a.walkStmts(rest, ref, stLocked)
}

func lockMethodName(ref lockRef) string {
	if ref.read {
		return "RLock"
	}
	return "Lock"
}

// releasedSomewhere reports whether any matching release exists in the
// whole function body after... anywhere (structural, not path-sensitive).
func (a *mutexAnalyzer) releasedSomewhere(ref lockRef) bool {
	return a.containsUnlock(a.funcBody, ref)
}

// walkStmts runs the three-valued state machine over a statement list,
// reporting returns reached while the lock is held, and returns the state
// at the end of the list.
func (a *mutexAnalyzer) walkStmts(stmts []ast.Stmt, ref lockRef, state lockState) lockState {
	for _, stmt := range stmts {
		state = a.walkStmt(stmt, ref, state)
	}
	return state
}

func (a *mutexAnalyzer) walkStmt(stmt ast.Stmt, ref lockRef, state lockState) lockState {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if a.stmtUnlocks(stmt, ref) {
			return stUnlocked
		}
		if r, _, ok := a.stmtLock(stmt); ok && r.recv == ref.recv && r.read == ref.read {
			return stLocked
		}
		if state == stLocked {
			a.checkBlockingExpr(s.X, ref)
		}
	case *ast.DeferStmt:
		if a.stmtDefersUnlock(stmt, ref) {
			return stUnlocked
		}
	case *ast.ReturnStmt:
		if state == stLocked {
			a.pass.Reportf(s.Pos(), "return while %s is held by %s() with no release on this path",
				ref.recv, lockMethodName(ref))
		}
	case *ast.BlockStmt:
		return a.walkStmts(s.List, ref, state)
	case *ast.LabeledStmt:
		return a.walkStmt(s.Stmt, ref, state)
	case *ast.IfStmt:
		then := a.walkStmts(s.Body.List, ref, state)
		els := state
		if s.Else != nil {
			els = a.walkStmt(s.Else, ref, state)
		}
		return mergeState(then, els)
	case *ast.ForStmt:
		return mergeState(state, a.walkStmts(s.Body.List, ref, state))
	case *ast.RangeStmt:
		return mergeState(state, a.walkStmts(s.Body.List, ref, state))
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, isSw := s.(*ast.SwitchStmt); isSw {
			body = sw.Body
		} else {
			body = s.(*ast.TypeSwitchStmt).Body
		}
		out := state
		for _, c := range body.List {
			if cc, isCase := c.(*ast.CaseClause); isCase {
				out = mergeState(out, a.walkStmts(cc.Body, ref, state))
			}
		}
		return out
	case *ast.SelectStmt:
		if state == stLocked && !ref.read && ref.rw {
			a.pass.Reportf(s.Pos(), "select while %s is write-locked (blocks all readers and writers)", ref.recv)
		}
		out := state
		for _, c := range s.Body.List {
			if cc, isComm := c.(*ast.CommClause); isComm {
				out = mergeState(out, a.walkStmts(cc.Body, ref, state))
			}
		}
		return out
	case *ast.SendStmt:
		if state == stLocked && !ref.read && ref.rw {
			a.pass.Reportf(s.Pos(), "channel send while %s is write-locked (blocks all readers and writers)", ref.recv)
		}
	case *ast.AssignStmt:
		if state == stLocked {
			for _, rhs := range s.Rhs {
				a.checkBlockingExpr(rhs, ref)
			}
		}
	case *ast.GoStmt:
		// A spawned goroutine has its own locking discipline.
	}
	return state
}

// reportReturns flags every return statement under stmt (function literals
// excluded: they return from their own frame).
func (a *mutexAnalyzer) reportReturns(stmt ast.Stmt, ref lockRef) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			a.pass.Reportf(n.Pos(), "return between %s.%s() and its deferred release",
				ref.recv, lockMethodName(ref))
		}
		return true
	})
}

// reportBlocking flags channel operations and known blocking calls under
// stmt while an RWMutex write lock is held.
func (a *mutexAnalyzer) reportBlocking(stmt ast.Stmt, ref lockRef) {
	if ref.read || !ref.rw {
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			a.pass.Reportf(n.Pos(), "channel send while %s is write-locked (blocks all readers and writers)", ref.recv)
		case *ast.UnaryExpr:
			a.checkBlockingExpr(n, ref)
			return false
		case *ast.CallExpr:
			a.checkBlockingExpr(n, ref)
		}
		return true
	})
}

// checkBlockingExpr flags `<-ch`, time.Sleep and WaitGroup.Wait in e while
// an RWMutex write lock is held.
func (a *mutexAnalyzer) checkBlockingExpr(e ast.Expr, ref lockRef) {
	if ref.read || !ref.rw {
		return
	}
	switch e := e.(type) {
	case *ast.UnaryExpr:
		if e.Op.String() == "<-" {
			a.pass.Reportf(e.Pos(), "channel receive while %s is write-locked (blocks all readers and writers)", ref.recv)
		}
	case *ast.CallExpr:
		sel, isSel := e.Fun.(*ast.SelectorExpr)
		if !isSel {
			return
		}
		obj, isFunc := a.pkg.Info.Uses[sel.Sel].(*types.Func)
		if !isFunc || obj.Pkg() == nil {
			return
		}
		switch {
		case obj.Pkg().Path() == "time" && obj.Name() == "Sleep":
			a.pass.Reportf(e.Pos(), "time.Sleep while %s is write-locked", ref.recv)
		case obj.Pkg().Path() == "sync" && obj.Name() == "Wait":
			a.pass.Reportf(e.Pos(), "%s while %s is write-locked", types.ExprString(e.Fun), ref.recv)
		}
	}
}
