package lint

import "testing"

func TestDeterminismPositive(t *testing.T) {
	cfg := Config{DeterministicPkgs: []string{"det"}}
	m := fixture(t, map[string]map[string]string{
		"det": {"det.go": `package det

import (
	"math/rand"
	"time"
)

func Clock() (time.Time, time.Duration) {
	start := time.Now()
	return start, time.Since(start)
}

func GlobalRand() int {
	return rand.Intn(10)
}

func MapOrder(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
`},
	})
	diags := runNamed(t, m, cfg, "determinism")
	wantDiag(t, diags, "determinism", "time.Now", 1)
	wantDiag(t, diags, "determinism", "time.Since", 1)
	wantDiag(t, diags, "determinism", "global math/rand.Intn", 1)
	wantDiag(t, diags, "determinism", "map iteration order", 1)
}

func TestDeterminismNegative(t *testing.T) {
	cfg := Config{DeterministicPkgs: []string{"det"}}
	m := fixture(t, map[string]map[string]string{
		"det": {"det.go": `package det

import (
	"math/rand"
	"sort"
	"time"
)

// A seeded generator is the sanctioned source: the New* constructors and
// methods on the seeded *rand.Rand must stay silent.
func Seeded() int {
	rng := rand.New(rand.NewSource(42))
	return rng.Intn(10)
}

// Ranging over a slice is ordered.
func SliceOrder(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// time types without a clock read are fine.
func Budget(d time.Duration) time.Duration { return 2 * d }

var _ = sort.Strings
`},
		// The same hazards outside DeterministicPkgs are not findings.
		"free": {"free.go": `package free

import "time"

func Clock() time.Time { return time.Now() }
`},
	})
	wantNone(t, runNamed(t, m, cfg, "determinism"))
}

func TestDeterminismSuppression(t *testing.T) {
	cfg := Config{DeterministicPkgs: []string{"det"}}
	m := fixture(t, map[string]map[string]string{
		"det": {"det.go": `package det

import "time"

func Timed() time.Duration {
	//lint:ignore determinism fixture models telemetry-only timing
	start := time.Now()
	//lint:ignore determinism fixture models telemetry-only timing
	return time.Since(start)
}
`},
	})
	wantNone(t, runNamed(t, m, cfg, "determinism"))
}
