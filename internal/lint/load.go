package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, parsed and type-checked package of the module.
type Package struct {
	// Path is the full import path ("spidercache/internal/kvserver").
	Path string
	// Name is the package name ("kvserver").
	Name string
	// Dir is the on-disk directory ("" for synthetic packages).
	Dir string
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's fact tables for Files.
	Info *types.Info
	// TypeErrors collects type-checker diagnostics (empty when the package
	// compiles; spiderlint reports them rather than guessing on broken code).
	TypeErrors []error
}

// RelPath returns the import path relative to the module ("internal/kvserver",
// or "." for the module root package).
func (p *Package) RelPath(m *Module) string {
	if p.Path == m.Path {
		return "."
	}
	return strings.TrimPrefix(p.Path, m.Path+"/")
}

// Module is every package of one Go module, loaded for analysis.
type Module struct {
	// Path is the module path from go.mod ("spidercache").
	Path string
	// Dir is the module root directory ("" for synthetic modules).
	Dir string
	// Fset positions every file of every package (shared with the stdlib
	// source importer, so cross-package positions stay coherent).
	Fset *token.FileSet
	// Packages is sorted by import path.
	Packages []*Package

	byPath map[string]*Package
}

// Lookup returns the package with the given import path, or nil.
func (m *Module) Lookup(path string) *Package { return m.byPath[path] }

// The stdlib importer is shared process-wide: it type-checks standard
// library packages from $GOROOT/src (no export data, no network, no
// golang.org/x/tools), and caching them once keeps repeated loads — every
// analyzer test fixture — from re-checking sync/time/bufio each time.
var (
	stdOnce sync.Once
	stdFset *token.FileSet
	stdImp  types.ImporterFrom
)

func sharedImporter() (*token.FileSet, types.ImporterFrom) {
	stdOnce.Do(func() {
		stdFset = token.NewFileSet()
		imp := importer.ForCompiler(stdFset, "source", nil)
		from, ok := imp.(types.ImporterFrom)
		if !ok {
			panic("lint: source importer does not support ImporterFrom")
		}
		stdImp = from
	})
	return stdFset, stdImp
}

// pkgSrc is the loader's pre-typecheck view of one package.
type pkgSrc struct {
	path  string
	name  string
	dir   string
	files []*ast.File
}

// moduleImporter resolves module-internal imports from the load set and
// delegates everything else to the stdlib source importer. Type-checking is
// memoized and recursive; modules are acyclic so recursion terminates.
type moduleImporter struct {
	mu      sync.Mutex
	modPath string
	fset    *token.FileSet
	std     types.ImporterFrom
	srcs    map[string]*pkgSrc
	done    map[string]*Package
	loading map[string]bool
}

func (mi *moduleImporter) Import(path string) (*types.Package, error) {
	return mi.ImportFrom(path, "", 0)
}

func (mi *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == mi.modPath || strings.HasPrefix(path, mi.modPath+"/") {
		pkg, err := mi.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return mi.std.ImportFrom(path, dir, mode)
}

// check type-checks the module package at path (memoized).
func (mi *moduleImporter) check(path string) (*Package, error) {
	if pkg, ok := mi.done[path]; ok {
		return pkg, nil
	}
	src, ok := mi.srcs[path]
	if !ok {
		return nil, fmt.Errorf("lint: import %q is not a package of module %s", path, mi.modPath)
	}
	if mi.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	mi.loading[path] = true
	defer delete(mi.loading, path)

	pkg := &Package{
		Path:  src.path,
		Name:  src.name,
		Dir:   src.dir,
		Files: src.files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	conf := types.Config{
		Importer: mi,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(src.path, mi.fset, src.files, pkg.Info)
	if err != nil && len(pkg.TypeErrors) == 0 {
		pkg.TypeErrors = append(pkg.TypeErrors, err)
	}
	pkg.Types = tpkg
	mi.done[path] = pkg
	return pkg, nil
}

// buildModule type-checks every pkgSrc and assembles the Module.
func buildModule(modPath, dir string, fset *token.FileSet, std types.ImporterFrom, srcs []*pkgSrc) (*Module, error) {
	mi := &moduleImporter{
		modPath: modPath,
		fset:    fset,
		std:     std,
		srcs:    make(map[string]*pkgSrc, len(srcs)),
		done:    make(map[string]*Package, len(srcs)),
		loading: map[string]bool{},
	}
	for _, s := range srcs {
		if prev, dup := mi.srcs[s.path]; dup {
			return nil, fmt.Errorf("lint: duplicate package path %q (%s vs %s)", s.path, prev.dir, s.dir)
		}
		mi.srcs[s.path] = s
	}
	m := &Module{Path: modPath, Dir: dir, Fset: fset, byPath: map[string]*Package{}}
	mi.mu.Lock()
	defer mi.mu.Unlock()
	for _, s := range srcs {
		pkg, err := mi.check(s.path)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", s.path, err)
		}
		m.Packages = append(m.Packages, pkg)
		m.byPath[pkg.Path] = pkg
	}
	sort.Slice(m.Packages, func(i, j int) bool { return m.Packages[i].Path < m.Packages[j].Path })
	return m, nil
}

// skipDirs are directory names never descended into during discovery.
var skipDirs = map[string]bool{"testdata": true, "vendor": true}

// LoadDir loads every package of the module rooted at dir: non-test .go
// files are parsed with comments and type-checked against the standard
// library source importer, so the loader works offline with no dependency
// beyond the Go toolchain's own source tree.
func LoadDir(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset, std := sharedImporter()

	var srcs []*pkgSrc
	walk := func(rel string) error {
		pdir := filepath.Join(abs, filepath.FromSlash(rel))
		ents, err := os.ReadDir(pdir)
		if err != nil {
			return err
		}
		var files []*ast.File
		name := ""
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(pdir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return err
			}
			if name == "" {
				name = f.Name.Name
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			return nil
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		srcs = append(srcs, &pkgSrc{path: path, name: name, dir: pdir, files: files})
		return nil
	}
	err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := d.Name()
		if p != abs && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || skipDirs[base]) {
			return filepath.SkipDir
		}
		rel, err := filepath.Rel(abs, p)
		if err != nil {
			return err
		}
		return walk(filepath.ToSlash(rel))
	})
	if err != nil {
		return nil, err
	}
	return buildModule(modPath, abs, fset, std, srcs)
}

// LoadSources loads a synthetic module from in-memory sources: pkgs maps a
// package path relative to modPath ("a", "internal/kvserver") to its files
// (file name -> source text). Analyzer tests build fixtures with it.
func LoadSources(modPath string, pkgs map[string]map[string]string) (*Module, error) {
	fset, std := sharedImporter()
	var srcs []*pkgSrc
	for rel, files := range pkgs {
		path := modPath
		if rel != "" && rel != "." {
			path = modPath + "/" + rel
		}
		src := &pkgSrc{path: path}
		names := make([]string, 0, len(files))
		for n := range files {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			f, err := parser.ParseFile(fset, n, files[n], parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			if src.name == "" {
				src.name = f.Name.Name
			}
			src.files = append(src.files, f)
		}
		srcs = append(srcs, src)
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].path < srcs[j].path })
	return buildModule(modPath, "", fset, std, srcs)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: not a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
