// Package lint is spidercache's project-specific static analyzer: a small,
// self-contained framework (go/parser + go/ast + go/types with the source
// importer — no golang.org/x/tools, so it runs offline) plus a suite of
// checks that mechanically enforce invariants the repository's correctness
// rests on but ordinary tooling cannot see:
//
//   - determinism    — no time.Now / global math/rand / map-order iteration
//     in the packages whose outputs must be bitwise-reproducible
//   - mutexhygiene   — Lock without a reachable Unlock on every return path;
//     RWMutex write-lock held across channel ops or blocking calls
//   - protostrings   — kvserver SERVER_ERROR payloads only from the declared
//     stable constant set (server, client and fuzzers stay in lockstep)
//   - metricnames    — telemetry names are snake_case, counters end _total,
//     each family is registered from exactly one function
//   - errcheck       — ignored error returns from io/net writes on the
//     kvserver hot path
//
// Findings are file:line diagnostics; a finding that is intentional is
// suppressed in place with
//
//	//lint:ignore <check> <reason>
//
// on, or on the line above, the flagged line. The reason is mandatory — an
// annotation without one is itself a diagnostic. `go run ./cmd/spiderlint
// ./...` exits nonzero on any finding and is part of the tier-1 verify
// recipe (see scripts/check.sh).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Check is one analyzer: a name (the //lint:ignore key and -checks flag
// value), one-line documentation, and a Run hook over the whole module.
type Check struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Config scopes the path-sensitive checks. Paths are import-path suffixes
// relative to the module root ("internal/tensor" matches
// "spidercache/internal/tensor"); an empty list disables the check.
type Config struct {
	// DeterministicPkgs are the packages whose outputs must be bitwise
	// reproducible: the determinism check applies only there.
	DeterministicPkgs []string
	// ProtoPkgs are the packages holding wire-protocol error strings: the
	// protostrings check applies only there.
	ProtoPkgs []string
	// ErrcheckPkgs are the packages where ignored io/net write errors are
	// findings.
	ErrcheckPkgs []string
	// PairRules are the acquire/release protocols enforced by pairhygiene.
	PairRules []PairRule
}

// DefaultConfig scopes the checks to this repository's invariants.
func DefaultConfig() Config {
	return Config{
		// The parallel kernels, batch scorer, policy core, trainer and
		// elastic controller must stay bitwise-identical run to run (and
		// parallel-vs-serial); metrics and experiments render tables whose
		// row order must be stable across runs.
		DeterministicPkgs: []string{
			"internal/tensor",
			"internal/semgraph",
			"internal/core",
			"internal/trainer",
			"internal/elastic",
			"internal/metrics",
			"internal/experiments",
		},
		ProtoPkgs: []string{"internal/kvserver"},
		// cluster and faultnet sit on the failover hot path: a dropped
		// write error there silently corrupts the retry/breaker accounting.
		ErrcheckPkgs: []string{"internal/kvserver", "internal/cluster", "internal/faultnet"},
		// A leaked epoch pin stalls arena reclamation forever; a leaked
		// pool client starves every other caller. The `store` interface
		// rule covers the server's GET path, the concrete `arenaStore`
		// rule any direct use of the implementation.
		PairRules: []PairRule{
			{Pkg: "internal/epoch", Type: "Reclaimer", Acquire: "Pin", Releases: []string{"Unpin"}},
			{Pkg: "internal/kvserver", Type: "store", Acquire: "pin", Releases: []string{"Unpin"}},
			{Pkg: "internal/kvserver", Type: "arenaStore", Acquire: "pin", Releases: []string{"Unpin"}},
			{Pkg: "internal/kvserver", Type: "Pool", Acquire: "Acquire", Releases: []string{"Release", "Discard"}},
		},
	}
}

// Checks returns the full suite in reporting order.
func Checks() []*Check {
	return []*Check{
		determinismCheck(),
		mutexHygieneCheck(),
		pairHygieneCheck(),
		atomicHygieneCheck(),
		lockOrderCheck(),
		protoStringsCheck(),
		metricNamesCheck(),
		errcheckCheck(),
	}
}

// CheckNames returns the names of every check in the suite.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return names
}

// Pass carries one check's run over the module.
type Pass struct {
	Cfg    Config
	Module *Module
	check  *Check
	diags  *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Module.Fset.Position(pos),
		Check:   p.check.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// PackagesMatching returns the module packages whose module-relative path
// matches one of the configured suffix patterns.
func (p *Pass) PackagesMatching(patterns []string) []*Package {
	var out []*Package
	for _, pkg := range p.Module.Packages {
		if pathMatches(pkg.RelPath(p.Module), patterns) {
			out = append(out, pkg)
		}
	}
	return out
}

func pathMatches(rel string, patterns []string) bool {
	for _, pat := range patterns {
		if rel == pat || strings.HasSuffix(rel, "/"+pat) {
			return true
		}
	}
	return false
}

// directiveCheck names the framework's own diagnostics about malformed
// //lint: comments.
const directiveCheck = "lintdirective"

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	check  string
	reason string
}

// Run executes the given checks over the module and returns the surviving
// diagnostics sorted by position. Findings carrying a matching
// //lint:ignore annotation are dropped; malformed annotations surface as
// "lintdirective" findings so a typoed suppression can never silently turn
// a check off.
func Run(m *Module, cfg Config, checks []*Check) []Diagnostic {
	var diags []Diagnostic

	// Type errors make every downstream fact suspect; report them as
	// first-class findings instead of guessing on a broken tree.
	for _, pkg := range m.Packages {
		for _, err := range pkg.TypeErrors {
			d := Diagnostic{Check: "typecheck", Message: err.Error()}
			if te, ok := err.(types.Error); ok {
				d.Pos = te.Fset.Position(te.Pos)
				d.Message = te.Msg
			} else if len(pkg.Files) > 0 {
				d.Pos = m.Fset.Position(pkg.Files[0].Pos())
			}
			diags = append(diags, d)
		}
	}

	known := map[string]bool{}
	for _, c := range Checks() {
		known[c.Name] = true
	}
	ignores, dirDiags := collectDirectives(m, known)
	diags = append(diags, dirDiags...)

	for _, c := range checks {
		pass := &Pass{Cfg: cfg, Module: m, check: c, diags: &diags}
		c.Run(pass)
	}

	kept := diags[:0]
	for _, d := range diags {
		if d.Check != directiveCheck && suppressed(ignores, d) {
			continue
		}
		kept = append(kept, d)
	}
	diags = kept
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags
}

// collectDirectives parses every //lint: comment in the module, returning
// the valid ignore directives keyed by file, plus diagnostics for malformed
// or unknown-check directives.
func collectDirectives(m *Module, known map[string]bool) (map[string][]ignoreDirective, []Diagnostic) {
	ignores := map[string][]ignoreDirective{}
	var diags []Diagnostic
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//lint:")
					if !ok {
						continue
					}
					pos := m.Fset.Position(c.Pos())
					verb, args, _ := strings.Cut(rest, " ")
					if verb != "ignore" {
						diags = append(diags, Diagnostic{Pos: pos, Check: directiveCheck,
							Message: fmt.Sprintf("unknown directive //lint:%s (only //lint:ignore <check> <reason> is supported)", verb)})
						continue
					}
					checkName, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
					reason = strings.TrimSpace(reason)
					switch {
					case checkName == "":
						diags = append(diags, Diagnostic{Pos: pos, Check: directiveCheck,
							Message: "//lint:ignore needs a check name and a reason"})
					case !known[checkName]:
						diags = append(diags, Diagnostic{Pos: pos, Check: directiveCheck,
							Message: fmt.Sprintf("//lint:ignore names unknown check %q (known: %s)", checkName, strings.Join(CheckNames(), ", "))})
					case reason == "":
						diags = append(diags, Diagnostic{Pos: pos, Check: directiveCheck,
							Message: fmt.Sprintf("//lint:ignore %s needs a reason", checkName)})
					default:
						ignores[pos.Filename] = append(ignores[pos.Filename], ignoreDirective{pos: pos, check: checkName, reason: reason})
					}
				}
			}
		}
	}
	return ignores, diags
}

// suppressed reports whether d carries an ignore annotation: a matching
// directive on the same line or the line directly above.
func suppressed(ignores map[string][]ignoreDirective, d Diagnostic) bool {
	for _, ig := range ignores[d.Pos.Filename] {
		if ig.check != d.Check {
			continue
		}
		if ig.pos.Line == d.Pos.Line || ig.pos.Line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// enclosingFuncs maps every source position interval of a file's top-level
// function declarations to a stable identity, used by checks that attribute
// call sites to functions.
type funcSpan struct {
	name       string
	start, end token.Pos
}

func fileFuncSpans(f *ast.File) []funcSpan {
	var spans []funcSpan
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			name = recvTypeName(fd.Recv.List[0].Type) + "." + name
		}
		spans = append(spans, funcSpan{name: name, start: fd.Pos(), end: fd.End()})
	}
	return spans
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	case *ast.IndexListExpr:
		return recvTypeName(t.X)
	}
	return "?"
}

// enclosingFunc returns the identity of the top-level function containing
// pos in file f ("" when pos is at package level).
func enclosingFunc(f *ast.File, pos token.Pos) string {
	for _, s := range fileFuncSpans(f) {
		if s.start <= pos && pos < s.end {
			return s.name
		}
	}
	return ""
}
