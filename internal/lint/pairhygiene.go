package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// pairHygieneCheck enforces acquire/release protocols declared in
// Config.PairRules: the resource returned by an acquire method
// (epoch.Reclaimer.Pin, kvserver.Pool.Acquire, ...) must reach one of its
// release methods on every path out of the acquiring function —
// lostcancel-style, but for project resources. A leaked epoch pin blocks
// reclamation forever; a leaked pool client starves every other caller.
//
// The analysis is intraprocedural over the CFG (cfg.go): the acquired
// local is traced as a three-valued "live" fact; releasing it (as the
// receiver of, or an argument to, a declared release method, inline or
// deferred) clears it, and so does any escape — returning the resource,
// storing it in a field, or passing it to another function transfers
// ownership, and the recipient is trusted to release it. When the acquire
// also yields an error, branches entered under `err != nil` are pruned:
// a failed acquire has nothing to release.
func pairHygieneCheck() *Check {
	c := &Check{
		Name: "pairhygiene",
		Doc:  "Acquired resources (epoch pins, pool clients) must be released or handed off on every path",
	}
	c.Run = func(p *Pass) {
		if len(p.Cfg.PairRules) == 0 {
			return
		}
		for _, pkg := range p.Module.Packages {
			for _, f := range pkg.Files {
				for _, fb := range fileFuncBodies(f) {
					analyzePairs(p, pkg, fb.body)
				}
			}
		}
	}
	return c
}

// PairRule declares one acquire/release protocol for pairhygiene. The
// receiver type (named struct or interface) is matched by name within any
// package whose import path matches the Pkg suffix, so the rule table is
// independent of the module path.
type PairRule struct {
	// Pkg is an import-path suffix ("internal/epoch") selecting the
	// package that defines the receiver type.
	Pkg string
	// Type is the receiver type's name; interface types match too, so a
	// rule can cover `store.pin` as well as the concrete implementation.
	Type string
	// Acquire is the method whose first result is the tracked resource.
	Acquire string
	// Releases are the method names that dispose of the resource, called
	// either on the resource itself (Slot.Unpin) or with the resource as
	// an argument (Pool.Release(c), Pool.Discard(c)).
	Releases []string
}

// pairSite is one tracked acquisition inside a function body.
type pairSite struct {
	rule PairRule
	stmt ast.Stmt // the acquiring statement (a CFG node)
	call *ast.CallExpr
	res  types.Object // the local bound to the resource
	err  types.Object // the error result, when the acquire yields one
}

func analyzePairs(p *Pass, pkg *Package, body *ast.BlockStmt) {
	g := buildCFG(body)

	var sites []pairSite
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			stmt, ok := n.(ast.Stmt)
			if !ok {
				continue
			}
			collectPairSite(p, pkg, stmt, &sites)
		}
	}

	for _, s := range sites {
		tracePair(p, pkg, g, s)
	}
}

// collectPairSite classifies stmt against the rule table. A matching call
// whose result is discarded is reported immediately — no path can release
// it. A call whose result binds a plain local becomes a traced site; any
// other shape (result returned, passed along, stored in a field) is an
// immediate ownership transfer and needs no tracing.
func collectPairSite(p *Pass, pkg *Package, stmt ast.Stmt, sites *[]pairSite) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if call, rule, ok := acquireCall(p, pkg, st.X); ok {
			p.Reportf(call.Pos(), "result of %s.%s() is discarded: the resource can never be released (expected %s)",
				rule.Type, rule.Acquire, joinReleases(rule))
		}
	case *ast.AssignStmt:
		if len(st.Rhs) != 1 {
			return
		}
		call, rule, ok := acquireCall(p, pkg, st.Rhs[0])
		if !ok {
			return
		}
		id, isIdent := st.Lhs[0].(*ast.Ident)
		if !isIdent {
			return // stored into a field/index: ownership transferred
		}
		if id.Name == "_" {
			p.Reportf(call.Pos(), "result of %s.%s() is discarded: the resource can never be released (expected %s)",
				rule.Type, rule.Acquire, joinReleases(rule))
			return
		}
		res := pkg.Info.ObjectOf(id)
		if res == nil {
			return
		}
		site := pairSite{rule: rule, stmt: stmt, call: call, res: res}
		if len(st.Lhs) == 2 {
			if eid, isIdent := st.Lhs[1].(*ast.Ident); isIdent && eid.Name != "_" {
				if obj := pkg.Info.ObjectOf(eid); obj != nil && types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
					site.err = obj
				}
			}
		}
		*sites = append(*sites, site)
	}
}

// acquireCall reports whether e is a call to a rule's acquire method.
func acquireCall(p *Pass, pkg *Package, e ast.Expr) (*ast.CallExpr, PairRule, bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return nil, PairRule{}, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, PairRule{}, false
	}
	s, hasSel := pkg.Info.Selections[sel]
	if !hasSel {
		return nil, PairRule{}, false
	}
	recv := s.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed {
		return nil, PairRule{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil, PairRule{}, false
	}
	for _, r := range p.Cfg.PairRules {
		if sel.Sel.Name == r.Acquire && obj.Name() == r.Type && pathMatches(obj.Pkg().Path(), []string{r.Pkg}) {
			return call, r, true
		}
	}
	return nil, PairRule{}, false
}

// tracePair solves the live-resource dataflow for one site and reports
// the leaking paths on a replay pass.
func tracePair(p *Pass, pkg *Package, g *funcCFG, site pairSite) {
	transfer := func(blk *cfgBlock, in triState) triState {
		return pairTransfer(pkg, blk, site, in, nil)
	}
	in := solveForward(g, triFalse, transfer, mergeTri,
		func(a, b triState) bool { return a == b })

	for _, blk := range g.blocks {
		fact, reached := in[blk]
		if !reached {
			continue
		}
		pairTransfer(pkg, blk, site, fact, func(ret *ast.ReturnStmt, f triState) {
			if f != triFalse {
				p.Reportf(ret.Pos(), "return may be reached with %s still held (acquired by %s.%s; expected %s)",
					site.res.Name(), site.rule.Type, site.rule.Acquire, joinReleases(site.rule))
			}
		})
	}

	// Paths that fall off the end of the function reach the exit block
	// without a return statement; returns consume the fact, so anything
	// live here leaked without one.
	if f, reached := in[g.exit]; reached && f != triFalse {
		p.Reportf(site.call.Pos(), "%s acquired here is not released on every path (expected %s)",
			site.res.Name(), joinReleases(site.rule))
	}
}

// pairTransfer runs the live-fact transfer over one block. onReturn, when
// non-nil, sees each return statement with the fact in force before it.
func pairTransfer(pkg *Package, blk *cfgBlock, site pairSite, in triState, onReturn func(*ast.ReturnStmt, triState)) triState {
	f := in
	// A branch entered under `err != nil` (or the negation of `err ==
	// nil`) means the acquire failed: there is no resource to release.
	if blk.assumeOK && site.err != nil && errGuardKills(pkg, blk, site.err) {
		f = triFalse
	}
	for _, n := range blk.nodes {
		if n == site.stmt {
			f = triTrue
			continue
		}
		if ret, isRet := n.(*ast.ReturnStmt); isRet {
			if usesObject(pkg, ret, site.res) {
				// The resource itself is returned: the caller owns it now.
				f = triFalse
				continue
			}
			if onReturn != nil {
				onReturn(ret, f)
			}
			// Consume the fact: a leak at this return is reported at the
			// return, not again at the exit block.
			f = triFalse
			continue
		}
		if nodeReleases(pkg, n, site) {
			f = triFalse
			continue
		}
		if resourceEscapes(pkg, n, site.res) {
			f = triFalse
			continue
		}
	}
	return f
}

// errGuardKills reports whether blk's entry assumption proves site's
// acquire failed.
func errGuardKills(pkg *Package, blk *cfgBlock, errObj types.Object) bool {
	be, isBin := blk.assumeCond.(*ast.BinaryExpr)
	if !isBin {
		return false
	}
	var errSide, nilSide ast.Expr
	if isNilIdent(pkg, be.Y) {
		errSide, nilSide = be.X, be.Y
	} else if isNilIdent(pkg, be.X) {
		errSide, nilSide = be.Y, be.X
	}
	if nilSide == nil {
		return false
	}
	id, isIdent := errSide.(*ast.Ident)
	if !isIdent || pkg.Info.ObjectOf(id) != errObj {
		return false
	}
	switch be.Op {
	case token.NEQ:
		return blk.assumeVal // err != nil taken
	case token.EQL:
		return !blk.assumeVal // err == nil not taken
	}
	return false
}

func isNilIdent(pkg *Package, e ast.Expr) bool {
	id, isIdent := e.(*ast.Ident)
	if !isIdent {
		return false
	}
	_, isNil := pkg.Info.ObjectOf(id).(*types.Nil)
	return isNil
}

// nodeReleases reports whether n calls one of site's release methods with
// the resource as the receiver or as an argument — inline, deferred, or
// inside a deferred closure.
func nodeReleases(pkg *Package, n ast.Node, site pairSite) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		name := ""
		var recvExpr ast.Expr
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = fn.Sel.Name
			recvExpr = fn.X
		case *ast.Ident:
			name = fn.Name
		default:
			return true
		}
		if !isReleaseName(site.rule, name) {
			return true
		}
		if id, isIdent := recvExpr.(*ast.Ident); isIdent && pkg.Info.ObjectOf(id) == site.res {
			found = true
			return false
		}
		for _, arg := range call.Args {
			if id, isIdent := arg.(*ast.Ident); isIdent && pkg.Info.ObjectOf(id) == site.res {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isReleaseName(rule PairRule, name string) bool {
	for _, r := range rule.Releases {
		if name == r {
			return true
		}
	}
	return false
}

// resourceEscapes reports whether n uses the resource in an
// ownership-transferring position: anything but a selector receiver
// (method call or field read on the resource) or a comparison. Passing
// the resource to a function, storing it, capturing it in a closure, or
// sending it on a channel all hand responsibility to someone else.
func resourceEscapes(pkg *Package, n ast.Node, res types.Object) bool {
	escaped := false
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if escaped {
			return false
		}
		id, isIdent := n.(*ast.Ident)
		if !isIdent || pkg.Info.ObjectOf(id) != res {
			return true
		}
		if len(stack) >= 2 {
			switch parent := stack[len(stack)-2].(type) {
			case *ast.SelectorExpr:
				if parent.X == id {
					return true // method call or field access on the resource
				}
			case *ast.BinaryExpr:
				return true // comparison (pin == nil etc.)
			}
		}
		escaped = true
		return false
	})
	return escaped
}

// usesObject reports whether any identifier under n resolves to obj.
func usesObject(pkg *Package, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, isIdent := n.(*ast.Ident); isIdent && pkg.Info.ObjectOf(id) == obj {
			found = true
		}
		return true
	})
	return found
}

func joinReleases(rule PairRule) string {
	return strings.Join(rule.Releases, " or ")
}
