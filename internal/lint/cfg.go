package lint

// Intraprocedural control-flow graphs over go/ast, plus the generic
// forward worklist solver the path-sensitive checks (mutexhygiene,
// pairhygiene, lockorder) run on. Built on the standard library only,
// like the rest of the framework.
//
// The graph decomposes one function body into basic blocks of
// straight-line nodes. Composite control statements never appear as
// nodes; instead their pieces are distributed:
//
//   - if/for:       the condition expression is a node in the head block
//   - range:        the ranged expression is a node in the head block
//   - switch:       init/tag in the head; each case's exprs start its block
//   - select:       the *ast.SelectStmt itself is a node in the head block
//     (shallow: a marker that a select blocks here — analyzers
//     must not descend into it, the clause bodies have their
//     own blocks) and each clause's comm statement starts the
//     clause block
//   - return:       the *ast.ReturnStmt is the block's final node, with an
//     edge to Exit
//   - panic(x):     edge to PanicExit (a separate sink, so leak-style
//     checks can reason about returns only)
//   - goto/break/continue/fallthrough: edges, never nodes
//
// Everything else (assignments, calls, defer, go, send, incdec, decls)
// is an ordinary node in source order. Function literals are opaque
// values: their bodies get their own graphs, never nodes in the
// enclosing one.
//
// Branch targets carry an optional entry assumption: the then-block of
// `if cond` records (cond, true), the else-block (cond, false), a
// for-loop's body (cond, true) and its follow block (cond, false).
// Analyzers that understand particular predicate shapes (pairhygiene's
// `err != nil` guard) refine their facts with it; everyone else ignores
// it.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// cfgBlock is one basic block.
type cfgBlock struct {
	index int
	nodes []ast.Node
	succs []*cfgBlock
	preds []*cfgBlock

	// Entry assumption: when assumeOK, the branch condition assumeCond
	// evaluated to assumeVal on every edge into this block from its
	// branching predecessor. Only set on dedicated branch-entry blocks.
	assumeCond ast.Expr
	assumeVal  bool
	assumeOK   bool
}

func (b *cfgBlock) addSucc(s *cfgBlock) {
	for _, have := range b.succs {
		if have == s {
			return
		}
	}
	b.succs = append(b.succs, s)
	s.preds = append(s.preds, b)
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	// exit collects every normal return and the fall-off-the-end path.
	exit *cfgBlock
	// panicExit collects explicit panic(...) terminations. Kept apart from
	// exit so resource-leak checks can confine themselves to returns.
	panicExit *cfgBlock
}

// cfgLabel tracks one labeled statement's jump targets while building.
type cfgLabel struct {
	breakTo    *cfgBlock // labeled loop/switch/select break target
	continueTo *cfgBlock // labeled loop continue target
	gotoTo     *cfgBlock // the labeled statement itself
}

type cfgBuilder struct {
	g *funcCFG
	// cur is the block under construction; nil after a terminator until
	// the next statement opens a fresh (unreachable) block.
	cur *cfgBlock
	// breakTo/continueTo are the innermost unlabeled targets.
	breakTo    []*cfgBlock
	continueTo []*cfgBlock
	labels     map[string]*cfgLabel
	// pendingGotos are forward gotos awaiting their label.
	pendingGotos map[string][]*cfgBlock
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g, labels: map[string]*cfgLabel{}, pendingGotos: map[string][]*cfgBlock{}}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	g.panicExit = b.newBlock()
	b.cur = g.entry
	b.stmtList(body.List)
	// Falling off the end of the body is an implicit return.
	if b.cur != nil {
		b.cur.addSucc(g.exit)
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// branchBlock opens a dedicated branch-entry block carrying an entry
// assumption, reachable from `from`.
func (b *cfgBuilder) branchBlock(from *cfgBlock, cond ast.Expr, val bool) *cfgBlock {
	blk := b.newBlock()
	if cond != nil {
		blk.assumeCond, blk.assumeVal, blk.assumeOK = cond, val, true
	}
	from.addSucc(blk)
	return blk
}

// here returns the block statements should currently append to, opening a
// fresh unreachable block after a terminator (dead code still gets a
// syntactically well-formed — if unreachable — home).
func (b *cfgBuilder) here() *cfgBlock {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	blk := b.here()
	blk.nodes = append(blk.nodes, n)
}

func (b *cfgBuilder) stmtList(stmts []ast.Stmt) {
	for _, s := range stmts {
		b.stmt(s)
	}
}

// isPanicCall reports whether stmt is a call of the predeclared panic.
func isPanicCall(stmt ast.Stmt) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	// The predeclared panic cannot be shadowed by anything callable that
	// we'd mistake here without a types lookup; the name test keeps the
	// builder independent of type information.
	return ok && id.Name == "panic"
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.add(s)
		b.here().addSucc(b.g.exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.LabeledStmt:
		b.labeled(s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		head := b.here()
		follow := b.newBlock()
		then := b.branchBlock(head, s.Cond, true)
		b.cur = then
		b.stmt(s.Body)
		if b.cur != nil {
			b.cur.addSucc(follow)
		}
		if s.Else != nil {
			els := b.branchBlock(head, s.Cond, false)
			b.cur = els
			b.stmt(s.Else)
			if b.cur != nil {
				b.cur.addSucc(follow)
			}
		} else {
			head.addSucc(follow)
			follow.assumeCond, follow.assumeVal, follow.assumeOK = s.Cond, false, true
			// The assumption only holds if the then-branch cannot also
			// reach follow (then it would be a merge point, not a pure
			// else-edge).
			if len(follow.preds) > 1 {
				follow.assumeOK = false
			}
		}
		b.cur = follow

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.here().addSucc(head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		follow := b.newBlock()
		post := b.newBlock()
		var body *cfgBlock
		if s.Cond != nil {
			body = b.branchBlock(head, s.Cond, true)
			head.addSucc(follow)
			follow.assumeCond, follow.assumeVal, follow.assumeOK = s.Cond, false, true
		} else {
			body = b.branchBlock(head, nil, false)
		}
		b.pushLoop(follow, post)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		if b.cur != nil {
			b.cur.addSucc(post)
		}
		if s.Post != nil {
			post.nodes = append(post.nodes, s.Post)
		}
		post.addSucc(head)
		if len(follow.preds) > 1 {
			follow.assumeOK = false
		}
		b.cur = follow

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock()
		b.here().addSucc(head)
		follow := b.newBlock()
		head.addSucc(follow)
		body := b.branchBlock(head, nil, false)
		b.pushLoop(follow, head)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		if b.cur != nil {
			b.cur.addSucc(head)
		}
		b.cur = follow

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body, false)

	case *ast.SelectStmt:
		b.add(s) // shallow marker: "a select blocks here"
		head := b.here()
		follow := b.newBlock()
		b.pushBreak(follow)
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			clause := b.branchBlock(head, nil, false)
			if cc.Comm != nil {
				clause.nodes = append(clause.nodes, cc.Comm)
			}
			b.cur = clause
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.cur.addSucc(follow)
			}
		}
		b.popBreak()
		// An empty select blocks forever: follow then has no predecessors
		// and everything after it is correctly unreachable.
		b.cur = follow

	case *ast.ExprStmt:
		if isPanicCall(s) {
			b.add(s)
			b.here().addSucc(b.g.panicExit)
			b.cur = nil
			return
		}
		b.add(s)

	default:
		// AssignStmt, DeclStmt, DeferStmt, GoStmt, SendStmt, IncDecStmt,
		// EmptyStmt: straight-line nodes.
		if _, ok := s.(*ast.EmptyStmt); ok {
			return
		}
		b.add(s)
	}
}

// switchBody lowers a (type)switch body: every case gets its own block
// fed from the head; fallthrough chains case bodies; a missing default
// adds the head→follow edge.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, allowFallthrough bool) {
	head := b.here()
	follow := b.newBlock()
	b.pushBreak(follow)

	type caseBlocks struct {
		cc    *ast.CaseClause
		block *cfgBlock
	}
	var cases []caseBlocks
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		blk := b.branchBlock(head, nil, false)
		for _, e := range cc.List {
			blk.nodes = append(blk.nodes, e)
		}
		if cc.List == nil {
			hasDefault = true
		}
		cases = append(cases, caseBlocks{cc, blk})
	}
	for i, c := range cases {
		b.cur = c.block
		b.stmtListWithFallthrough(c.cc.Body, func() *cfgBlock {
			if allowFallthrough && i+1 < len(cases) {
				return cases[i+1].block
			}
			return follow
		})
		if b.cur != nil {
			b.cur.addSucc(follow)
		}
	}
	if !hasDefault {
		head.addSucc(follow)
	}
	b.popBreak()
	b.cur = follow
}

// stmtListWithFallthrough runs a case body where a trailing fallthrough
// jumps to next() instead of being an error.
func (b *cfgBuilder) stmtListWithFallthrough(stmts []ast.Stmt, next func() *cfgBlock) {
	for _, s := range stmts {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			b.here().addSucc(next())
			b.cur = nil
			return
		}
		b.stmt(s)
	}
}

func (b *cfgBuilder) pushLoop(breakTo, continueTo *cfgBlock) {
	b.breakTo = append(b.breakTo, breakTo)
	b.continueTo = append(b.continueTo, continueTo)
}

func (b *cfgBuilder) popLoop() {
	b.breakTo = b.breakTo[:len(b.breakTo)-1]
	b.continueTo = b.continueTo[:len(b.continueTo)-1]
}

func (b *cfgBuilder) pushBreak(to *cfgBlock) {
	b.breakTo = append(b.breakTo, to)
	b.continueTo = append(b.continueTo, nil)
}

func (b *cfgBuilder) popBreak() { b.popLoop() }

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		var to *cfgBlock
		if s.Label != nil {
			if l := b.labels[s.Label.Name]; l != nil {
				to = l.breakTo
			}
		} else {
			for i := len(b.breakTo) - 1; i >= 0; i-- {
				if b.breakTo[i] != nil {
					to = b.breakTo[i]
					break
				}
			}
		}
		if to != nil {
			b.here().addSucc(to)
		}
		b.cur = nil
	case token.CONTINUE:
		var to *cfgBlock
		if s.Label != nil {
			if l := b.labels[s.Label.Name]; l != nil {
				to = l.continueTo
			}
		} else {
			for i := len(b.continueTo) - 1; i >= 0; i-- {
				if b.continueTo[i] != nil {
					to = b.continueTo[i]
					break
				}
			}
		}
		if to != nil {
			b.here().addSucc(to)
		}
		b.cur = nil
	case token.GOTO:
		if s.Label != nil {
			if l := b.labels[s.Label.Name]; l != nil && l.gotoTo != nil {
				b.here().addSucc(l.gotoTo)
			} else {
				from := b.here()
				b.pendingGotos[s.Label.Name] = append(b.pendingGotos[s.Label.Name], from)
			}
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Only legal as the final statement of a case body, which
		// stmtListWithFallthrough intercepts; a stray one terminates flow.
		b.cur = nil
	}
}

func (b *cfgBuilder) labeled(s *ast.LabeledStmt) {
	// The labeled statement starts its own block: a goto target must have
	// a block boundary.
	target := b.newBlock()
	if b.cur != nil {
		b.cur.addSucc(target)
	}
	for _, from := range b.pendingGotos[s.Label.Name] {
		from.addSucc(target)
	}
	delete(b.pendingGotos, s.Label.Name)

	l := &cfgLabel{gotoTo: target}
	b.labels[s.Label.Name] = l
	b.cur = target

	switch inner := s.Stmt.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		// Pre-wire the labeled loop's break/continue: build the loop with
		// the label's targets patched in afterwards. We lower the loop
		// normally, but need its follow/continue blocks registered under
		// the label before the body (which may contain `break L`) is
		// built. Easiest: wrap stmt lowering with label hooks.
		b.labeledLoop(l, inner)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.labeledSwitch(l, inner)
	default:
		b.stmt(s.Stmt)
	}
}

// labeledLoop lowers a labeled for/range so `break L` / `continue L`
// resolve while the body is being built.
func (b *cfgBuilder) labeledLoop(l *cfgLabel, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.here().addSucc(head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		follow := b.newBlock()
		post := b.newBlock()
		var body *cfgBlock
		if s.Cond != nil {
			body = b.branchBlock(head, s.Cond, true)
			head.addSucc(follow)
			follow.assumeCond, follow.assumeVal, follow.assumeOK = s.Cond, false, true
		} else {
			body = b.branchBlock(head, nil, false)
		}
		l.breakTo, l.continueTo = follow, post
		b.pushLoop(follow, post)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		if b.cur != nil {
			b.cur.addSucc(post)
		}
		if s.Post != nil {
			post.nodes = append(post.nodes, s.Post)
		}
		post.addSucc(head)
		if len(follow.preds) > 1 {
			follow.assumeOK = false
		}
		b.cur = follow
	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock()
		b.here().addSucc(head)
		follow := b.newBlock()
		head.addSucc(follow)
		body := b.branchBlock(head, nil, false)
		l.breakTo, l.continueTo = follow, head
		b.pushLoop(follow, head)
		b.cur = body
		b.stmt(s.Body)
		b.popLoop()
		if b.cur != nil {
			b.cur.addSucc(head)
		}
		b.cur = follow
	}
}

// labeledSwitch lowers a labeled switch/select so `break L` resolves.
func (b *cfgBuilder) labeledSwitch(l *cfgLabel, s ast.Stmt) {
	// The follow block does not exist until the lowering runs; register a
	// placeholder the lowering will wire, then alias it.
	placeholder := b.newBlock()
	l.breakTo = placeholder
	b.stmt(s)
	// b.cur is now the real follow block: forward the placeholder.
	if b.cur != nil && len(placeholder.preds) > 0 {
		placeholder.addSucc(b.cur)
	}
}

// solveForward runs a forward dataflow analysis over g to fixpoint.
// transfer computes a block's out-fact from its in-fact and must be
// monotone w.r.t. merge; merge joins facts at confluence points; equal
// detects the fixpoint. Returns the in-fact of every reached block
// (unreachable blocks are absent).
func solveForward[F any](g *funcCFG, entry F, transfer func(*cfgBlock, F) F, merge func(F, F) F, equal func(F, F) bool) map[*cfgBlock]F {
	in := map[*cfgBlock]F{g.entry: entry}
	out := map[*cfgBlock]F{}
	work := []*cfgBlock{g.entry}
	inWork := map[*cfgBlock]bool{g.entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk] = false
		o := transfer(blk, in[blk])
		if prev, ok := out[blk]; ok && equal(prev, o) {
			continue
		}
		out[blk] = o
		for _, s := range blk.succs {
			ni := o
			if cur, ok := in[s]; ok {
				ni = merge(cur, o)
				if equal(cur, ni) {
					continue
				}
			}
			in[s] = ni
			if !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// funcBodies yields every function body in f — declarations and function
// literals — with a printable identity.
type funcBody struct {
	name string
	body *ast.BlockStmt
}

func fileFuncBodies(f *ast.File) []funcBody {
	var out []funcBody
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		name := fd.Name.Name
		if fd.Recv != nil && len(fd.Recv.List) > 0 {
			name = recvTypeName(fd.Recv.List[0].Type) + "." + name
		}
		out = append(out, funcBody{name: name, body: fd.Body})
		// Nested literals, innermost last; each analyzed independently.
		nested := 0
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				nested++
				out = append(out, funcBody{name: fmt.Sprintf("%s.func%d", name, nested), body: lit.Body})
			}
			return true
		})
	}
	return out
}

// cfgString renders g for golden tests: one line per non-empty block with
// its node sources and successor indices, in block-index order.
func cfgString(fset *token.FileSet, g *funcCFG) string {
	var sb strings.Builder
	special := func(b *cfgBlock) string {
		switch b {
		case g.entry:
			return " (entry)"
		case g.exit:
			return " (exit)"
		case g.panicExit:
			return " (panic)"
		}
		return ""
	}
	for _, b := range g.blocks {
		if len(b.nodes) == 0 && len(b.succs) == 0 && len(b.preds) == 0 &&
			b != g.entry && b != g.exit && b != g.panicExit {
			continue // never wired (e.g. builder scratch): not part of the graph
		}
		fmt.Fprintf(&sb, "b%d%s:", b.index, special(b))
		for _, n := range b.nodes {
			fmt.Fprintf(&sb, " {%s}", nodeSrc(fset, n))
		}
		if len(b.succs) > 0 {
			idx := make([]int, len(b.succs))
			for i, s := range b.succs {
				idx[i] = s.index
			}
			sort.Ints(idx)
			parts := make([]string, len(idx))
			for i, x := range idx {
				parts[i] = fmt.Sprintf("b%d", x)
			}
			fmt.Fprintf(&sb, " -> %s", strings.Join(parts, " "))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// nodeSrc prints one node's source, squashed onto a single line. Select
// statements print as a marker (their bodies live in other blocks).
func nodeSrc(fset *token.FileSet, n ast.Node) string {
	if _, ok := n.(*ast.SelectStmt); ok {
		return "select"
	}
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := buf.String()
	s = strings.ReplaceAll(s, "\n", " ")
	s = strings.ReplaceAll(s, "\t", "")
	for strings.Contains(s, "  ") {
		s = strings.ReplaceAll(s, "  ", " ")
	}
	return s
}
