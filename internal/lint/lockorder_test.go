package lint

import "testing"

func TestLockOrderInversion(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"app": {"app.go": `package app

import "sync"

type X struct {
	mu sync.Mutex
	n  int
}
type Y struct {
	mu sync.Mutex
	n  int
}

func LockAB(x *X, y *Y) {
	x.mu.Lock()
	y.mu.Lock()
	y.n++
	y.mu.Unlock()
	x.mu.Unlock()
}

func LockBA(x *X, y *Y) {
	y.mu.Lock()
	x.mu.Lock()
	x.n++
	x.mu.Unlock()
	y.mu.Unlock()
}
`},
	})
	diags := runNamed(t, m, DefaultConfig(), "lockorder")
	wantDiag(t, diags, "lockorder", "lock order cycle", 2)
	wantDiag(t, diags, "lockorder", "Y.mu acquired while X.mu is held", 1)
	wantDiag(t, diags, "lockorder", "X.mu acquired while Y.mu is held", 1)
}

// TestLockOrderCFGOnly: the only path in Kick that locks Y released X
// first, so there is no X→Y edge and no cycle. A syntax-level scan
// ("x.mu.Lock textually precedes y.mu.Lock") would invent the edge and a
// false deadlock.
func TestLockOrderCFGOnly(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"app": {"app.go": `package app

import "sync"

type X struct {
	mu sync.Mutex
	n  int
}
type Y struct {
	mu sync.Mutex
	n  int
}

func Kick(x *X, y *Y, cond bool) {
	x.mu.Lock()
	if cond {
		x.mu.Unlock()
		y.mu.Lock()
		y.n++
		y.mu.Unlock()
		return
	}
	x.n++
	x.mu.Unlock()
}

func Other(x *X, y *Y) {
	y.mu.Lock()
	x.mu.Lock()
	x.n++
	x.mu.Unlock()
	y.mu.Unlock()
}
`},
	})
	wantNone(t, runNamed(t, m, DefaultConfig(), "lockorder"))
}

// A cycle where one direction only exists through a callee's transitive
// lock summary.
func TestLockOrderViaCall(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"app": {"app.go": `package app

import "sync"

type X struct {
	mu sync.Mutex
	n  int
}
type Y struct {
	mu sync.Mutex
	n  int
}

func Outer(x *X, y *Y) {
	x.mu.Lock()
	defer x.mu.Unlock()
	bump(y)
}

func bump(y *Y) {
	y.mu.Lock()
	y.n++
	y.mu.Unlock()
}

func Inverse(x *X, y *Y) {
	y.mu.Lock()
	x.mu.Lock()
	x.n++
	x.mu.Unlock()
	y.mu.Unlock()
}
`},
	})
	diags := runNamed(t, m, DefaultConfig(), "lockorder")
	wantDiag(t, diags, "lockorder", "lock order cycle", 2)
	wantDiag(t, diags, "lockorder", "via call to bump", 1)
}

func TestLockOrderSelfLoop(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"app": {"app.go": `package app

import "sync"

type Shard struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Two instances of the same field: deadlock if ever called with the
// arguments swapped concurrently.
func Transfer(a, b *Shard) {
	a.mu.Lock()
	b.mu.Lock()
	b.n = a.n
	b.mu.Unlock()
	a.mu.Unlock()
}

// Overlapping read locks never deadlock each other.
func Compare(a, b *Shard) bool {
	a.rw.RLock()
	b.rw.RLock()
	eq := a.n == b.n
	b.rw.RUnlock()
	a.rw.RUnlock()
	return eq
}
`},
	})
	diags := runNamed(t, m, DefaultConfig(), "lockorder")
	wantDiag(t, diags, "lockorder", "Shard.mu acquired while another Shard.mu is already held", 1)
	wantDiag(t, diags, "lockorder", "Shard.rw", 0)
}

func TestLockOrderNegativeAndSuppression(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"app": {"app.go": `package app

import "sync"

type X struct {
	mu sync.Mutex
	n  int
}
type Y struct {
	mu sync.Mutex
	n  int
}

// Consistent ordering everywhere: X before Y.
func First(x *X, y *Y) {
	x.mu.Lock()
	y.mu.Lock()
	y.n++
	y.mu.Unlock()
	x.mu.Unlock()
}

func Second(x *X, y *Y) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	defer y.mu.Unlock()
	x.n = y.n
}

type Ring struct {
	mu sync.Mutex
	n  int
}

// Hand-over-hand traversal locks neighbors in ring order.
func Walk(a, b *Ring) {
	a.mu.Lock()
	//lint:ignore lockorder hand-over-hand traversal always walks in ring index order
	b.mu.Lock()
	b.n = a.n
	b.mu.Unlock()
	a.mu.Unlock()
}
`},
	})
	wantNone(t, runNamed(t, m, DefaultConfig(), "lockorder"))
}
