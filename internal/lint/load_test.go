package lint

import (
	"testing"
)

// TestLoadRealModule is the in-test twin of `go run ./cmd/spiderlint ./...`:
// the repository's own tree must load, type-check and come out clean under
// the full suite. A regression that reintroduces a forbidden pattern fails
// here even if nobody runs the CLI.
func TestLoadRealModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module; skipped in -short")
	}
	m, err := LoadDir("../..")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if m.Path != "spidercache" {
		t.Fatalf("module path = %q, want spidercache", m.Path)
	}
	for _, want := range []string{
		"spidercache/internal/kvserver",
		"spidercache/internal/tensor",
		"spidercache/internal/telemetry",
		"spidercache/internal/lint",
	} {
		if m.Lookup(want) == nil {
			t.Errorf("module is missing package %s", want)
		}
	}
	for _, pkg := range m.Packages {
		for _, e := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
	}

	diags := Run(m, DefaultConfig(), Checks())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

func TestLoadSourcesLookupAndRelPath(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"":           {"root.go": "package fix\n"},
		"internal/a": {"a.go": "package a\n"},
	})
	root := m.Lookup("fix")
	if root == nil || root.RelPath(m) != "." {
		t.Fatalf("root package: got %+v", root)
	}
	a := m.Lookup("fix/internal/a")
	if a == nil || a.RelPath(m) != "internal/a" {
		t.Fatalf("internal/a package: got %+v", a)
	}
	if m.Lookup("fix/internal/missing") != nil {
		t.Fatal("Lookup of a missing package must return nil")
	}
}

func TestLoadSourcesCrossPackageTypes(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"a": {"a.go": `package a

type Widget struct{ N int }

func New(n int) *Widget { return &Widget{N: n} }
`},
		"b": {"b.go": `package b

import "fix/a"

func Double(w *a.Widget) int { return 2 * w.N }

var _ = a.New
`},
	})
	for _, pkg := range m.Packages {
		for _, e := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.Path, e)
		}
	}
}
