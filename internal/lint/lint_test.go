package lint

import (
	"strings"
	"testing"
)

// fixture loads a synthetic module "fix" from in-memory sources and fails
// the test on loader errors. Type errors are left in place: Run surfaces
// them as "typecheck" diagnostics, which wantNone/wantDiag will trip over,
// so a broken fixture fails loudly instead of silently passing.
func fixture(t *testing.T, pkgs map[string]map[string]string) *Module {
	t.Helper()
	m, err := LoadSources("fix", pkgs)
	if err != nil {
		t.Fatalf("LoadSources: %v", err)
	}
	return m
}

// runNamed runs exactly the named checks over m.
func runNamed(t *testing.T, m *Module, cfg Config, names ...string) []Diagnostic {
	t.Helper()
	byName := map[string]*Check{}
	for _, c := range Checks() {
		byName[c.Name] = c
	}
	var cs []*Check
	for _, n := range names {
		c, ok := byName[n]
		if !ok {
			t.Fatalf("unknown check %q", n)
		}
		cs = append(cs, c)
	}
	return Run(m, cfg, cs)
}

// wantDiag asserts exactly `count` diagnostics from `check` whose message
// contains substr.
func wantDiag(t *testing.T, diags []Diagnostic, check, substr string, count int) {
	t.Helper()
	n := 0
	for _, d := range diags {
		if d.Check == check && strings.Contains(d.Message, substr) {
			n++
		}
	}
	if n != count {
		t.Errorf("want %d %s diagnostic(s) containing %q, got %d; all diagnostics:\n%s",
			count, check, substr, n, formatDiags(diags))
	}
}

// wantNone asserts the run produced no diagnostics at all.
func wantNone(t *testing.T, diags []Diagnostic) {
	t.Helper()
	if len(diags) != 0 {
		t.Errorf("want no diagnostics, got %d:\n%s", len(diags), formatDiags(diags))
	}
}

func formatDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("  " + d.String() + "\n")
	}
	if b.Len() == 0 {
		return "  (none)\n"
	}
	return b.String()
}

func TestCheckNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Checks() {
		if c.Name == "" || c.Doc == "" || c.Run == nil {
			t.Errorf("check %+v is missing a name, doc or run hook", c)
		}
		if seen[c.Name] {
			t.Errorf("duplicate check name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestDirectiveDiagnostics(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"app": {"app.go": `package app

//lint:nolint determinism not a real verb
func A() {}

//lint:ignore nosuchcheck some reason
func B() {}

//lint:ignore determinism
func C() {}

//lint:ignore
func D() {}
`},
	})
	diags := runNamed(t, m, DefaultConfig(), "determinism")
	wantDiag(t, diags, "lintdirective", "unknown directive //lint:nolint", 1)
	wantDiag(t, diags, "lintdirective", `unknown check "nosuchcheck"`, 1)
	wantDiag(t, diags, "lintdirective", "needs a reason", 1)
	wantDiag(t, diags, "lintdirective", "needs a check name and a reason", 1)
}

func TestSuppressionPlacement(t *testing.T) {
	cfg := Config{DeterministicPkgs: []string{"det"}}
	m := fixture(t, map[string]map[string]string{
		"det": {"det.go": `package det

import "time"

// Suppressed: directive on the line above the finding.
func Above() time.Time {
	//lint:ignore determinism fixture exercises line-above suppression
	return time.Now()
}

// Suppressed: directive trailing on the same line.
func SameLine() time.Time {
	return time.Now() //lint:ignore determinism fixture exercises same-line suppression
}

// Not suppressed: two lines away is out of range.
func TooFar() time.Time {
	//lint:ignore determinism fixture directive is too far away

	return time.Now()
}
`},
	})
	diags := runNamed(t, m, cfg, "determinism")
	wantDiag(t, diags, "determinism", "time.Now", 1)
}

func TestSuppressionIsPerCheck(t *testing.T) {
	cfg := Config{DeterministicPkgs: []string{"det"}, ErrcheckPkgs: []string{"det"}}
	m := fixture(t, map[string]map[string]string{
		"det": {"det.go": `package det

import (
	"fmt"
	"io"
	"time"
)

// The errcheck ignore must not hide the determinism finding on the same line.
func Mixed(w io.Writer) {
	//lint:ignore errcheck fixture suppresses only the write
	fmt.Fprintf(w, "%v", time.Now())
}
`},
	})
	diags := runNamed(t, m, cfg, "determinism", "errcheck")
	wantDiag(t, diags, "determinism", "time.Now", 1)
	wantDiag(t, diags, "errcheck", "Fprintf", 0)
}

func TestTypeErrorsAreReported(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"bad": {"bad.go": `package bad

func Broken() int { return "not an int" }
`},
	})
	diags := runNamed(t, m, DefaultConfig(), "determinism")
	wantDiag(t, diags, "typecheck", "", 1)
}

func TestPathMatches(t *testing.T) {
	cases := []struct {
		rel      string
		patterns []string
		want     bool
	}{
		{"internal/kvserver", []string{"internal/kvserver"}, true},
		{"internal/kvserver", []string{"kvserver"}, true},
		{"internal/kvserverx", []string{"kvserver"}, false},
		{"internal/tensor", []string{"internal/kvserver"}, false},
		{"internal/tensor", nil, false},
	}
	for _, c := range cases {
		if got := pathMatches(c.rel, c.patterns); got != c.want {
			t.Errorf("pathMatches(%q, %v) = %v, want %v", c.rel, c.patterns, got, c.want)
		}
	}
}
