package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockOrderCheck builds the module-wide lock-acquisition graph and reports
// every cycle in it as a potential deadlock. A lock is identified by its
// declaration (the struct field or package variable of sync.Mutex/RWMutex
// type), so two shard instances of the same field are one node — the
// standard static approximation. An edge A→B is recorded whenever B is
// acquired on a path where A is still held, either directly or through a
// call to a module function whose (transitive) summary acquires B. The
// held set is a CFG dataflow fact, so a lock released before the next
// acquisition — even along goto/branch paths — contributes no edge; a
// purely syntactic "Lock appears before Lock" scan would invent edges and
// cycles that no execution can take.
//
// Cycles are reported once per participating edge, each message naming
// the counter-acquisition site, so every half of an inversion is visible
// and individually suppressible. A self-loop (the same field acquired
// while an instance of it is held) is reported too — unless both
// acquisitions are read locks, which can always overlap.
func lockOrderCheck() *Check {
	c := &Check{
		Name: "lockorder",
		Doc:  "Cycles in the module-wide lock-acquisition order (potential deadlocks)",
	}
	c.Run = func(p *Pass) {
		a := &lockOrderAnalyzer{
			pass:      p,
			summaries: map[*types.Func]map[types.Object]lockAcq{},
			callees:   map[*types.Func][]*types.Func{},
			names:     map[types.Object]string{},
		}
		a.buildSummaries()
		a.buildEdges()
		a.reportCycles()
	}
	return c
}

// lockAcq is one acquisition of a lock: where, and in which mode.
type lockAcq struct {
	pos  token.Pos
	read bool
}

// lockEdge records "to was acquired while from was held".
type lockEdge struct {
	from, to types.Object
	fromAcq  lockAcq
	toAcq    lockAcq
	pos      token.Pos // reporting site: the inner Lock call or the call expr
	via      string    // callee name when the edge comes from a call summary
}

type lockOrderAnalyzer struct {
	pass      *Pass
	summaries map[*types.Func]map[types.Object]lockAcq
	callees   map[*types.Func][]*types.Func
	names     map[types.Object]string
	edges     []lockEdge
	edgeSeen  map[[2]types.Object]bool
}

// --- lock call resolution -------------------------------------------------

// lockCall classifies stmt as a sync lock-family call on a resolvable
// mutex object.
type lockCall struct {
	obj     types.Object // the mutex declaration (field or variable)
	display string       // "Type.field" or "pkg.var"
	read    bool
	acquire bool // Lock/RLock (TryLock never blocks and is ignored)
	pos     token.Pos
}

func resolveLockCall(pkg *Package, stmt ast.Stmt) (lockCall, bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return lockCall{}, false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return lockCall{}, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return lockCall{}, false
	}
	fn, isFunc := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFunc || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockCall{}, false
	}
	lc := lockCall{pos: call.Pos()}
	switch fn.Name() {
	case "Lock":
		lc.acquire = true
	case "RLock":
		lc.acquire, lc.read = true, true
	case "Unlock":
	case "RUnlock":
		lc.read = true
	default:
		return lockCall{}, false // TryLock etc.
	}
	switch recv := sel.X.(type) {
	case *ast.SelectorExpr:
		v, isVar := pkg.Info.Uses[recv.Sel].(*types.Var)
		if !isVar {
			return lockCall{}, false
		}
		lc.obj = v
		lc.display = recvDisplayName(pkg, recv.X) + "." + v.Name()
	case *ast.Ident:
		obj := pkg.Info.ObjectOf(recv)
		if obj == nil {
			return lockCall{}, false
		}
		lc.obj = obj
		lc.display = pkg.Name + "." + obj.Name()
	default:
		return lockCall{}, false
	}
	return lc, true
}

// --- call summaries -------------------------------------------------------

// buildSummaries computes, for every module function, the transitive set
// of locks a call to it may acquire. Function literals are excluded from
// their enclosing function's summary (a stored closure runs later, a
// spawned one concurrently), which under-approximates immediately-invoked
// literals — a documented intraprocedural limit.
func (a *lockOrderAnalyzer) buildSummaries() {
	for _, pkg := range a.pass.Module.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, isFunc := decl.(*ast.FuncDecl)
				if !isFunc || fd.Body == nil {
					continue
				}
				fn, isObj := pkg.Info.Defs[fd.Name].(*types.Func)
				if !isObj {
					continue
				}
				direct := map[types.Object]lockAcq{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if _, isLit := n.(*ast.FuncLit); isLit {
						return false
					}
					if stmt, isStmt := n.(ast.Stmt); isStmt {
						if lc, ok := resolveLockCall(pkg, stmt); ok && lc.acquire {
							if _, seen := direct[lc.obj]; !seen {
								direct[lc.obj] = lockAcq{pos: lc.pos, read: lc.read}
							}
							a.names[lc.obj] = lc.display
						}
					}
					if call, isCall := n.(*ast.CallExpr); isCall {
						if callee, ok := staticCallee(pkg, call); ok {
							a.callees[fn] = append(a.callees[fn], callee)
						}
					}
					return true
				})
				a.summaries[fn] = direct
			}
		}
	}
	// Transitive closure by fixpoint; the module call graph is small.
	for changed := true; changed; {
		changed = false
		for fn, summ := range a.summaries {
			for _, callee := range a.callees[fn] {
				for obj, acq := range a.summaries[callee] {
					if _, seen := summ[obj]; !seen {
						summ[obj] = acq
						changed = true
					}
				}
			}
		}
	}
}

// staticCallee resolves call to a module-defined function or method.
// Interface method calls have no body to summarize and are skipped.
func staticCallee(pkg *Package, call *ast.CallExpr) (*types.Func, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, false
	}
	fn, isFunc := pkg.Info.Uses[id].(*types.Func)
	if !isFunc || fn.Pkg() == nil {
		return nil, false
	}
	return fn, true
}

// --- edge collection ------------------------------------------------------

// heldLocks is the dataflow fact: the locks that may be held, with their
// acquisition site. Merging keeps the earliest site and demotes the mode
// to write unless every path read-locked.
type heldLocks map[types.Object]lockAcq

func (h heldLocks) clone() heldLocks {
	out := make(heldLocks, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func mergeHeld(x, y heldLocks) heldLocks {
	out := x.clone()
	for obj, acq := range y {
		prev, seen := out[obj]
		if !seen {
			out[obj] = acq
			continue
		}
		merged := lockAcq{pos: prev.pos, read: prev.read && acq.read}
		if acq.pos < merged.pos {
			merged.pos = acq.pos
		}
		out[obj] = merged
	}
	return out
}

func equalHeld(x, y heldLocks) bool {
	if len(x) != len(y) {
		return false
	}
	for obj, acq := range x {
		if other, seen := y[obj]; !seen || other != acq {
			return false
		}
	}
	return true
}

// buildEdges solves the held-set dataflow over every function body
// (closures included, with an empty entry set) and collects edges on a
// replay pass over the solved in-facts.
func (a *lockOrderAnalyzer) buildEdges() {
	a.edgeSeen = map[[2]types.Object]bool{}
	for _, pkg := range a.pass.Module.Packages {
		for _, f := range pkg.Files {
			for _, fb := range fileFuncBodies(f) {
				g := buildCFG(fb.body)
				transfer := func(blk *cfgBlock, in heldLocks) heldLocks {
					return a.lockTransfer(pkg, blk, in, false)
				}
				in := solveForward(g, heldLocks{}, transfer, mergeHeld, equalHeld)
				for _, blk := range g.blocks {
					fact, reached := in[blk]
					if !reached {
						continue
					}
					a.lockTransfer(pkg, blk, fact, true)
				}
			}
		}
	}
}

// lockTransfer applies one block's lock operations to the held set; with
// emit set it also records acquisition edges.
func (a *lockOrderAnalyzer) lockTransfer(pkg *Package, blk *cfgBlock, in heldLocks, emit bool) heldLocks {
	f := in
	mutated := false
	mutable := func() heldLocks {
		if !mutated {
			f, mutated = f.clone(), true
		}
		return f
	}
	for _, node := range blk.nodes {
		if stmt, isStmt := node.(ast.Stmt); isStmt {
			if lc, ok := resolveLockCall(pkg, stmt); ok {
				if lc.acquire {
					a.names[lc.obj] = lc.display
					if emit {
						for held, acq := range f {
							a.addEdge(lockEdge{
								from: held, to: lc.obj,
								fromAcq: acq,
								toAcq:   lockAcq{pos: lc.pos, read: lc.read},
								pos:     lc.pos,
							})
						}
					}
					if _, already := f[lc.obj]; !already {
						mutable()[lc.obj] = lockAcq{pos: lc.pos, read: lc.read}
					}
				} else {
					if _, held := f[lc.obj]; held {
						delete(mutable(), lc.obj)
					}
				}
				continue
			}
		}
		if !emit || len(f) == 0 {
			continue
		}
		// Calls into the module transfer the held set across the call:
		// whatever the callee's summary acquires is acquired while f is
		// held. Deferred and spawned calls run outside this path.
		switch node.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			continue
		}
		ast.Inspect(node, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
				return false
			}
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			callee, ok := staticCallee(pkg, call)
			if !ok {
				return true
			}
			for obj, acq := range a.summaries[callee] {
				for held, heldAcq := range f {
					a.addEdge(lockEdge{
						from: held, to: obj,
						fromAcq: heldAcq,
						toAcq:   acq,
						pos:     call.Pos(),
						via:     callee.Name(),
					})
				}
			}
			return true
		})
	}
	return f
}

// addEdge records the first witness of each (from, to) pair.
func (a *lockOrderAnalyzer) addEdge(e lockEdge) {
	key := [2]types.Object{e.from, e.to}
	if a.edgeSeen[key] {
		return
	}
	a.edgeSeen[key] = true
	a.edges = append(a.edges, e)
}

// --- cycle detection ------------------------------------------------------

// reportCycles finds strongly connected components of the acquisition
// graph and reports every edge inside one (plus self-loops), naming the
// counter-acquisition that closes the cycle.
func (a *lockOrderAnalyzer) reportCycles() {
	if len(a.edges) == 0 {
		return
	}
	var nodes []types.Object
	index := map[types.Object]int{}
	addNode := func(o types.Object) {
		if _, seen := index[o]; !seen {
			index[o] = len(nodes)
			nodes = append(nodes, o)
		}
	}
	for _, e := range a.edges {
		addNode(e.from)
		addNode(e.to)
	}
	adj := make([][]int, len(nodes))
	for _, e := range a.edges {
		adj[index[e.from]] = append(adj[index[e.from]], index[e.to])
	}
	comp := sccKosaraju(adj)
	compSize := map[int]int{}
	for _, c := range comp {
		compSize[c]++
	}

	var reports []lockEdge
	for _, e := range a.edges {
		u, v := index[e.from], index[e.to]
		if e.from == e.to {
			if e.fromAcq.read && e.toAcq.read {
				continue // RLock while RLock held always overlaps safely
			}
			reports = append(reports, e)
			continue
		}
		if comp[u] == comp[v] && compSize[comp[u]] > 1 {
			reports = append(reports, e)
		}
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].pos < reports[j].pos })

	for _, e := range reports {
		if e.from == e.to {
			a.pass.Reportf(e.pos, "%s acquired while another %s is already held%s (self-cycle: deadlock if both are the same instance; annotate if instances are locked in a fixed order)",
				a.names[e.to], a.names[e.from], viaClause(e))
			continue
		}
		counter := a.counterEdge(e, index, comp)
		a.pass.Reportf(e.pos, "lock order cycle: %s acquired while %s is held%s, but %s is acquired while %s is held at %s (potential deadlock)",
			a.names[e.to], a.names[e.from], viaClause(e),
			a.names[counter.to], a.names[counter.from], a.shortPos(counter.pos))
	}
}

// counterEdge picks the next hop of the cycle e sits on: an in-component
// edge leaving e.to (one exists — e.to reaches e.from inside the SCC).
func (a *lockOrderAnalyzer) counterEdge(e lockEdge, index map[types.Object]int, comp []int) lockEdge {
	for _, cand := range a.edges {
		if cand.from != e.to || cand.from == cand.to {
			continue
		}
		if comp[index[cand.to]] == comp[index[cand.from]] {
			return cand
		}
	}
	return e
}

func viaClause(e lockEdge) string {
	if e.via == "" {
		return ""
	}
	return fmt.Sprintf(" (via call to %s)", e.via)
}

// shortPos renders pos relative to the module root for readable messages.
func (a *lockOrderAnalyzer) shortPos(pos token.Pos) string {
	p := a.pass.Module.Fset.Position(pos)
	file := p.Filename
	if dir := a.pass.Module.Dir; dir != "" && strings.HasPrefix(file, dir+"/") {
		file = strings.TrimPrefix(file, dir+"/")
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}

// sccKosaraju labels each node of adj with its strongly connected
// component (iterative two-pass Kosaraju; deterministic for a fixed node
// order).
func sccKosaraju(adj [][]int) []int {
	n := len(adj)
	radj := make([][]int, n)
	for u, vs := range adj {
		for _, v := range vs {
			radj[v] = append(radj[v], u)
		}
	}
	order := make([]int, 0, n)
	state := make([]int, n) // 0 unvisited, 1 in stack, 2 done
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		type frame struct{ u, i int }
		stack := []frame{{s, 0}}
		state[s] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.i < len(adj[f.u]) {
				v := adj[f.u][f.i]
				f.i++
				if state[v] == 0 {
					state[v] = 1
					stack = append(stack, frame{v, 0})
				}
				continue
			}
			order = append(order, f.u)
			state[f.u] = 2
			stack = stack[:len(stack)-1]
		}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	c := 0
	for i := n - 1; i >= 0; i-- {
		root := order[i]
		if comp[root] != -1 {
			continue
		}
		stack := []int{root}
		comp[root] = c
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range radj[u] {
				if comp[v] == -1 {
					comp[v] = c
					stack = append(stack, v)
				}
			}
		}
		c++
	}
	return comp
}
