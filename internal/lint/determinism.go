package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// determinismCheck forbids the three classic sources of silent
// nondeterminism in the packages whose outputs must be bitwise-reproducible
// (Config.DeterministicPkgs): wall-clock reads (time.Now / time.Since),
// the process-global math/rand generator, and ranging over a map. The
// SHADE and iCache reproductions both report that nondeterminism in
// importance scoring corrupts cache-policy comparisons without failing any
// test — hence a build-time gate rather than a review convention.
//
// Telemetry-only timing and collect-then-sort map scans are legitimate;
// annotate them with //lint:ignore determinism <reason>.
func determinismCheck() *Check {
	c := &Check{
		Name: "determinism",
		Doc:  "forbid time.Now, global math/rand and map-order iteration in deterministic packages",
	}
	c.Run = func(p *Pass) {
		for _, pkg := range p.PackagesMatching(p.Cfg.DeterministicPkgs) {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.SelectorExpr:
						obj := pkg.Info.Uses[n.Sel]
						if obj == nil || obj.Pkg() == nil {
							return true
						}
						switch obj.Pkg().Path() {
						case "time":
							if obj.Name() == "Now" || obj.Name() == "Since" {
								p.Reportf(n.Pos(), "time.%s in a deterministic package; take times as inputs (or annotate telemetry-only timing)", obj.Name())
							}
						case "math/rand", "math/rand/v2":
							// Package-level functions draw from the global
							// generator; methods on a seeded *rand.Rand are
							// fine (their selector X is a variable, not the
							// package), and the New* constructors are how a
							// seeded source is built in the first place.
							if _, isFunc := obj.(*types.Func); isFunc && isPackageSelector(pkg, n.X) && !strings.HasPrefix(obj.Name(), "New") {
								p.Reportf(n.Pos(), "global math/rand.%s in a deterministic package; use a seeded source (internal/xrand or rand.New)", obj.Name())
							}
						}
					case *ast.RangeStmt:
						tv, ok := pkg.Info.Types[n.X]
						if !ok || tv.Type == nil {
							return true
						}
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							p.Reportf(n.Pos(), "map iteration order is random; sort the keys first (or annotate an order-insensitive scan)")
						}
					}
					return true
				})
			}
		}
	}
	return c
}

// isPackageSelector reports whether e is a bare package qualifier (the X of
// rand.Intn as opposed to the X of rng.Intn).
func isPackageSelector(pkg *Package, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isPkg := pkg.Info.Uses[id].(*types.PkgName)
	return isPkg
}
