package lint

import "testing"

// pairFixtureCfg scopes pairhygiene to the fixture module's resource
// packages, mirroring the real table's epoch-pin and pool-client rules.
func pairFixtureCfg() Config {
	return Config{PairRules: []PairRule{
		{Pkg: "epoch", Type: "Reclaimer", Acquire: "Pin", Releases: []string{"Unpin"}},
		{Pkg: "pool", Type: "Pool", Acquire: "Acquire", Releases: []string{"Release", "Discard"}},
	}}
}

// pairResourcePkgs are the fixture resource providers shared by every
// pairhygiene test.
func pairResourcePkgs() map[string]map[string]string {
	return map[string]map[string]string{
		"epoch": {"epoch.go": `package epoch

type Reclaimer struct{}
type Slot struct{ Gen int }

func (r *Reclaimer) Pin() *Slot { return &Slot{} }
func (s *Slot) Unpin()          {}
`},
		"pool": {"pool.go": `package pool

type Pool struct{}
type Client struct{}

func (p *Pool) Acquire() (*Client, error) { return &Client{}, nil }
func (p *Pool) Release(c *Client)         {}
func (p *Pool) Discard(c *Client)         {}
`},
	}
}

func pairFixture(t *testing.T, appSrc string) *Module {
	t.Helper()
	pkgs := pairResourcePkgs()
	pkgs["app"] = map[string]string{"app.go": appSrc}
	return fixture(t, pkgs)
}

func TestPairHygienePositive(t *testing.T) {
	m := pairFixture(t, `package app

import (
	"fix/epoch"
	"fix/pool"
)

var counter int

// The then-branch returns with the pin live; only a path-sensitive
// analysis distinguishes it from the releasing path below it.
func BranchLeak(r *epoch.Reclaimer, cond bool) {
	s := r.Pin()
	if cond {
		return
	}
	s.Unpin()
}

// Discarded results can never be released.
func Discards(r *epoch.Reclaimer) {
	r.Pin()
	_ = r.Pin()
}

// No release and no return statement: the leak is at the acquire.
func FallsOffEnd(r *epoch.Reclaimer) {
	s := r.Pin()
	counter += s.Gen
}

// The error-guarded return is clean (nothing was acquired), but the
// cond-guarded return leaks the client.
func PoolLeak(p *pool.Pool, cond bool) error {
	c, err := p.Acquire()
	if err != nil {
		return err
	}
	if cond {
		return nil
	}
	p.Release(c)
	return nil
}
`)
	diags := runNamed(t, m, pairFixtureCfg(), "pairhygiene")
	wantDiag(t, diags, "pairhygiene", "return may be reached with s still held", 1)
	wantDiag(t, diags, "pairhygiene", "return may be reached with c still held", 1)
	wantDiag(t, diags, "pairhygiene", "is discarded", 2)
	wantDiag(t, diags, "pairhygiene", "s acquired here is not released on every path", 1)
}

func TestPairHygieneNegative(t *testing.T) {
	m := pairFixture(t, `package app

import (
	"fix/epoch"
	"fix/pool"
)

func use(s *epoch.Slot) {}

// The canonical shape.
func Deferred(r *epoch.Reclaimer) int {
	s := r.Pin()
	defer s.Unpin()
	return s.Gen
}

// Inline release on every path.
func Inline(r *epoch.Reclaimer, cond bool) int {
	s := r.Pin()
	if cond {
		s.Unpin()
		return 1
	}
	s.Unpin()
	return 0
}

// A deferred closure releasing the pin counts.
func DeferredClosure(r *epoch.Reclaimer) {
	s := r.Pin()
	defer func() {
		s.Unpin()
	}()
}

// A failed acquire has nothing to release: the err != nil branch must
// not be flagged even though the client variable is in scope.
func ErrGuard(p *pool.Pool) error {
	c, err := p.Acquire()
	if err != nil {
		return err
	}
	defer p.Release(c)
	return nil
}

// Release-or-discard on distinct paths, pool-style.
func ReleaseOrDiscard(p *pool.Pool, bad bool) error {
	c, err := p.Acquire()
	if err != nil {
		return err
	}
	if bad {
		p.Discard(c)
		return nil
	}
	p.Release(c)
	return nil
}

// Returning the resource transfers ownership to the caller.
func Handoff(r *epoch.Reclaimer) *epoch.Slot {
	s := r.Pin()
	return s
}

// So does passing it to another function or sending it away.
func PassAlong(r *epoch.Reclaimer) {
	s := r.Pin()
	use(s)
}

func SendAway(r *epoch.Reclaimer, out chan *epoch.Slot) {
	s := r.Pin()
	out <- s
}
`)
	wantNone(t, runNamed(t, m, pairFixtureCfg(), "pairhygiene"))
}

func TestPairHygieneSuppression(t *testing.T) {
	m := pairFixture(t, `package app

import "fix/epoch"

var counter int

// A pin held for the lifetime of the process, released by a shutdown
// hook the analyzer cannot see.
func HoldForever(r *epoch.Reclaimer) {
	//lint:ignore pairhygiene pin intentionally held until process shutdown
	s := r.Pin()
	counter += s.Gen
}
`)
	wantNone(t, runNamed(t, m, pairFixtureCfg(), "pairhygiene"))
}
