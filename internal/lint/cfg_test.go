package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFixtureCFG parses src (one file with one function named fn) and
// returns the function's CFG plus the fileset for rendering.
func buildFixtureCFG(t *testing.T, src, fn string) (*token.FileSet, *funcCFG) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfgfix.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fset, buildCFG(fd.Body)
		}
	}
	t.Fatalf("function %q not found", fn)
	return nil, nil
}

// wantCFG asserts the rendered graph matches golden exactly (both sides
// whitespace-trimmed per line).
func wantCFG(t *testing.T, fset *token.FileSet, g *funcCFG, golden string) {
	t.Helper()
	trim := func(s string) string {
		var out []string
		for _, l := range strings.Split(strings.TrimSpace(s), "\n") {
			out = append(out, strings.TrimSpace(l))
		}
		return strings.Join(out, "\n")
	}
	got := trim(cfgString(fset, g))
	want := trim(golden)
	if got != want {
		t.Errorf("CFG mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestCFGStraightLineAndIf(t *testing.T) {
	fset, g := buildFixtureCFG(t, `package p
func f(a int) int {
	a++
	if a > 0 {
		a = 1
	} else {
		a = 2
	}
	return a
}`, "f")
	wantCFG(t, fset, g, `
b0 (entry): {a++} {a > 0} -> b4 b5
b1 (exit):
b2 (panic):
b3: {return a} -> b1
b4: {a = 1} -> b3
b5: {a = 2} -> b3
`)
}

func TestCFGNestedLoops(t *testing.T) {
	fset, g := buildFixtureCFG(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s += j
		}
	}
	return s
}`, "f")
	// Outer: head=b3 body=b6 post=b5 follow=b4; inner inside b6:
	// head=b7 body=b10 post=b9 follow=b8.
	wantCFG(t, fset, g, `
b0 (entry): {s := 0} {i := 0} -> b3
b1 (exit):
b2 (panic):
b3: {i < n} -> b4 b6
b4: {return s} -> b1
b5: {i++} -> b3
b6: {j := 0} -> b7
b7: {j < n} -> b8 b10
b8: -> b5
b9: {j++} -> b7
b10: {s += j} -> b9
`)
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	fset, g := buildFixtureCFG(t, `package p
func f(m [][]int) int {
	s := 0
outer:
	for _, row := range m {
		for _, v := range row {
			if v < 0 {
				continue outer
			}
			if v == 0 {
				break outer
			}
			s += v
		}
	}
	return s
}`, "f")
	// b3 is the labeled statement's target block holding the ranged expr;
	// outer range head=b4 follow=b5 body=b6; inner head=b7 follow=b8
	// body=b9. continue outer -> b4 (outer head); break outer -> b5.
	wantCFG(t, fset, g, `
b0 (entry): {s := 0} -> b3
b1 (exit):
b2 (panic):
b3: {m} -> b4
b4: -> b5 b6
b5: {return s} -> b1
b6: {row} -> b7
b7: -> b8 b9
b8: -> b4
b9: {v < 0} -> b10 b11
b10: {v == 0} -> b12 b13
b11: -> b4
b12: {s += v} -> b7
b13: -> b5
`)
}

func TestCFGDeferInLoopAndPanic(t *testing.T) {
	fset, g := buildFixtureCFG(t, `package p
func f(files []string) {
	for _, name := range files {
		h := open(name)
		defer h.close()
		if h == nil {
			panic("open")
		}
	}
}
func open(string) *T { return nil }
type T struct{}
func (*T) close() {}`, "f")
	// The defer is an ordinary node inside the loop body (b5); panic exits
	// to the panic sink b2, not the function exit b1.
	wantCFG(t, fset, g, `
b0 (entry): {files} -> b3
b1 (exit):
b2 (panic):
b3: -> b4 b5
b4: -> b1
b5: {h := open(name)} {defer h.close()} {h == nil} -> b6 b7
b6: -> b3
b7: {panic("open")} -> b2
`)
}

func TestCFGSelect(t *testing.T) {
	fset, g := buildFixtureCFG(t, `package p
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case b <- 1:
	}
	return 0
}`, "f")
	// The select head (b0) holds the shallow marker; each clause block
	// starts with its comm statement; case 1 returns, case 2 falls to the
	// follow block b3.
	wantCFG(t, fset, g, `
b0 (entry): {select} -> b4 b5
b1 (exit):
b2 (panic):
b3: {return 0} -> b1
b4: {v := <-a} {return v} -> b1
b5: {b <- 1} -> b3
`)
}

func TestCFGGoto(t *testing.T) {
	fset, g := buildFixtureCFG(t, `package p
func f(cond bool) int {
	x := 1
	if cond {
		goto out
	}
	x = 2
out:
	return x
}`, "f")
	// The forward goto resolves to the labeled block b5 once the label is
	// reached; both the branch and the fallthrough path converge there.
	wantCFG(t, fset, g, `
b0 (entry): {x := 1} {cond} -> b3 b4
b1 (exit):
b2 (panic):
b3: {x = 2} -> b5
b4: -> b5
b5: {return x} -> b1
`)
}

func TestCFGSwitchFallthrough(t *testing.T) {
	fset, g := buildFixtureCFG(t, `package p
func f(x int) int {
	switch x {
	case 1:
		x = 10
		fallthrough
	case 2:
		x = 20
	default:
		x = 30
	}
	return x
}`, "f")
	// Fallthrough chains case 1's block into case 2's; the default case
	// means no direct head->follow edge.
	wantCFG(t, fset, g, `
b0 (entry): {x} -> b4 b5 b6
b1 (exit):
b2 (panic):
b3: {return x} -> b1
b4: {1} {x = 10} -> b5
b5: {2} {x = 20} -> b3
b6: {x = 30} -> b3
`)
}

func TestCFGBranchAssumptions(t *testing.T) {
	fset, g := buildFixtureCFG(t, `package p
func f(err error) error {
	if err != nil {
		return err
	}
	return nil
}`, "f")
	_ = fset
	// then-block assumes cond true; with no else and a returning then
	// branch, the follow block keeps the cond-false assumption.
	var then, follow *cfgBlock
	for _, b := range g.blocks {
		if b.assumeOK && b.assumeVal {
			then = b
		}
		if b.assumeOK && !b.assumeVal {
			follow = b
		}
	}
	if then == nil || follow == nil {
		t.Fatalf("missing branch assumptions: then=%v follow=%v", then, follow)
	}
}

// TestCFGSolverReachesFixpointOnLoops drives the generic solver with a
// reaching-state fact over a looping graph and checks it terminates with
// the merged fact, exercising the worklist's convergence rather than any
// particular analyzer.
func TestCFGSolverReachesFixpoint(t *testing.T) {
	_, g := buildFixtureCFG(t, `package p
func f(n int) int {
	x := 0
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x = 1
		}
	}
	return x
}`, "f")
	// Fact: set of possible "x" values, as a bitmask. 1<<0 = x==0, 1<<1 = x==1.
	transfer := func(b *cfgBlock, in uint) uint {
		out := in
		for _, n := range b.nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				src := nodeSrcForTest(as)
				if src == "x:=0" {
					out = 1 << 0
				}
				if src == "x=1" {
					out |= 1 << 1
				}
			}
		}
		return out
	}
	in := solveForward(g, uint(0), transfer,
		func(a, b uint) uint { return a | b },
		func(a, b uint) bool { return a == b })
	got, ok := in[g.exit]
	if !ok {
		t.Fatalf("exit unreachable")
	}
	if got != (1<<0 | 1<<1) {
		t.Errorf("exit fact = %b, want both states merged (11)", got)
	}
}

func nodeSrcForTest(n ast.Node) string {
	fset := token.NewFileSet()
	s := nodeSrc(fset, n)
	return strings.ReplaceAll(s, " ", "")
}
