package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicHygieneCheck enforces all-or-nothing atomicity per struct field: a
// field that is accessed through sync/atomic functions anywhere in the
// module must never be read or written plainly. One plain store next to a
// CAS loop silently forfeits every guarantee the loop bought — exactly the
// bug class around the admission sketch's packed counter words and the
// doorkeeper bitset.
//
// The check is module-wide and two-pass. Pass one walks every function,
// resolves `&x.f`, `&x.f[i]` and `&alias[i]` arguments of sync/atomic
// calls to their struct field (local aliases of the field are traced
// through assignments), and records the indexing depth of the atomic
// access. Pass two flags any plain access to a recorded field at that
// depth or deeper. The depth rule is what separates element atomicity
// from header bookkeeping: for `rows [4][]uint64` accessed as
// `atomic.LoadUint64(&a.rows[i][w])`, slice-header operations
// (`a.rows[i] = make(...)`, `range a.rows`, `row := a.rows[i]`) stay
// legal while a plain `a.rows[i][w]` — or `row[w]` through the alias —
// is a finding. Composite-literal initialization is naturally exempt:
// a field key in a literal is not a field access.
func atomicHygieneCheck() *Check {
	c := &Check{
		Name: "atomichygiene",
		Doc:  "Fields accessed via sync/atomic anywhere must never be read or written plainly",
	}
	c.Run = func(p *Pass) {
		a := &atomicAnalyzer{
			pass:       p,
			tracked:    map[*types.Var]*atomicField{},
			aliases:    map[types.Object]aliasInfo{},
			atomicArgs: map[ast.Expr]bool{},
		}
		a.collect()
		a.flag()
	}
	return c
}

// atomicField records how one struct field is atomically accessed.
type atomicField struct {
	owner string // display name of the owning struct
	depth int    // minimal indexing depth at the atomic sites
}

// aliasInfo records that a local variable holds x.f indexed base levels
// deep (row := a.rows[i] has base 1).
type aliasInfo struct {
	field *types.Var
	base  int
}

type atomicAnalyzer struct {
	pass       *Pass
	tracked    map[*types.Var]*atomicField
	aliases    map[types.Object]aliasInfo
	atomicArgs map[ast.Expr]bool // the &expr arguments of atomic calls
}

// collect resolves every sync/atomic call argument in the module to its
// struct field. Aliases are collected first so `&row[w]` attributes to
// the aliased field; object identity scopes the alias map for free.
func (a *atomicAnalyzer) collect() {
	for _, pkg := range a.pass.Module.Packages {
		for _, f := range pkg.Files {
			a.collectAliases(pkg, f)
		}
	}
	for _, pkg := range a.pass.Module.Packages {
		for _, f := range pkg.Files {
			a.collectAtomicSites(pkg, f)
		}
	}
}

func (a *atomicAnalyzer) collectAliases(pkg *Package, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		as, isAssign := n.(*ast.AssignStmt)
		if !isAssign || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, isIdent := lhs.(*ast.Ident)
			if !isIdent || id.Name == "_" {
				continue
			}
			field, depth, _, ok := a.resolveAccess(pkg, as.Rhs[i])
			if !ok {
				continue
			}
			if obj := pkg.Info.ObjectOf(id); obj != nil {
				a.aliases[obj] = aliasInfo{field: field, base: depth}
			}
		}
		return true
	})
}

func (a *atomicAnalyzer) collectAtomicSites(pkg *Package, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall || !isAtomicFuncCall(pkg, call) {
			return true
		}
		for _, arg := range call.Args {
			ue, isAddr := arg.(*ast.UnaryExpr)
			if !isAddr || ue.Op != token.AND {
				continue
			}
			a.atomicArgs[arg] = true
			field, depth, owner, ok := a.resolveAccess(pkg, ue.X)
			if !ok {
				continue
			}
			if t, seen := a.tracked[field]; !seen {
				a.tracked[field] = &atomicField{owner: owner, depth: depth}
			} else if depth < t.depth {
				t.depth = depth
			}
		}
		return true
	})
}

// isAtomicFuncCall reports whether call invokes a package-level sync/atomic
// function (Load*, Store*, Add*, Swap*, CompareAndSwap*).
func isAtomicFuncCall(pkg *Package, call *ast.CallExpr) bool {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return false
	}
	fn, isFunc := pkg.Info.Uses[sel.Sel].(*types.Func)
	return isFunc && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" &&
		fn.Type().(*types.Signature).Recv() == nil
}

// resolveAccess strips index layers off e and resolves the base to a
// struct field, either directly (`x.f[i][j]` → f, depth 2) or through a
// collected alias (`row[w]` → rows, alias base + 1). owner is the
// display name of the struct at the selector, "" for alias roots.
func (a *atomicAnalyzer) resolveAccess(pkg *Package, e ast.Expr) (field *types.Var, depth int, owner string, ok bool) {
	for {
		ie, isIndex := e.(*ast.IndexExpr)
		if !isIndex {
			break
		}
		depth++
		e = ie.X
	}
	switch base := e.(type) {
	case *ast.SelectorExpr:
		v, isVar := pkg.Info.Uses[base.Sel].(*types.Var)
		if !isVar || !v.IsField() {
			return nil, 0, "", false
		}
		return v, depth, recvDisplayName(pkg, base.X), true
	case *ast.Ident:
		obj := pkg.Info.ObjectOf(base)
		if obj == nil {
			return nil, 0, "", false
		}
		al, isAlias := a.aliases[obj]
		if !isAlias {
			return nil, 0, "", false
		}
		return al.field, al.base + depth, "", true
	}
	return nil, 0, "", false
}

// recvDisplayName names the struct type of the selector receiver x.
func recvDisplayName(pkg *Package, x ast.Expr) string {
	tv, hasType := pkg.Info.Types[x]
	if !hasType {
		return "?"
	}
	t := tv.Type
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if named, isNamed := t.(*types.Named); isNamed {
		return named.Obj().Name()
	}
	return t.String()
}

// flag walks the module again and reports every plain access at or below
// a tracked field's atomic depth.
func (a *atomicAnalyzer) flag() {
	if len(a.tracked) == 0 {
		return
	}
	for _, pkg := range a.pass.Module.Packages {
		for _, f := range pkg.Files {
			writes := collectWriteRoots(f)
			ast.Inspect(f, func(n ast.Node) bool {
				e, isExpr := n.(ast.Expr)
				if !isExpr {
					return true
				}
				if a.atomicArgs[e] {
					return false // the atomic access itself
				}
				switch e.(type) {
				case *ast.IndexExpr, *ast.SelectorExpr:
				default:
					return true
				}
				field, depth, _, ok := a.resolveAccess(pkg, e)
				if !ok {
					return true
				}
				t, isTracked := a.tracked[field]
				if !isTracked || depth < t.depth {
					return true
				}
				verb := "read of"
				if writes[e] {
					verb = "write to"
				}
				what := field.Name()
				if t.depth > 0 {
					what = "an element of " + what
				}
				a.pass.Reportf(e.Pos(), "plain %s %s on %s.%s: the field is accessed with sync/atomic elsewhere",
					verb, what, t.owner, field.Name())
				return true
			})
		}
	}
}

// collectWriteRoots returns the expressions written by assignments and
// inc/dec statements in f.
func collectWriteRoots(f *ast.File) map[ast.Expr]bool {
	writes := map[ast.Expr]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				writes[lhs] = true
			}
		case *ast.IncDecStmt:
			writes[st.X] = true
		}
		return true
	})
	return writes
}
