package lint

import "testing"

func TestMutexHygienePositive(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"app": {"app.go": `package app

import "sync"

type S struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	ch  chan int
	n   int
}

// Return squeezed between Lock and the deferred release.
func (s *S) EarlyReturn(cond bool) {
	s.mu.Lock()
	if cond {
		return
	}
	defer s.mu.Unlock()
	s.n++
}

// Locked and never released anywhere in the function.
func (s *S) Leak() {
	s.mu.Lock()
	s.n++
}

// Inline release on one path, bare return on the other.
func (s *S) MissedPath(cond bool) int {
	s.mu.Lock()
	if cond {
		return 1
	}
	s.mu.Unlock()
	return 0
}

// Channel send while the RWMutex is write-locked starves every reader.
func (s *S) SendUnderWriteLock(v int) {
	s.rw.Lock()
	s.ch <- v
	s.rw.Unlock()
}

// Channel receive while write-locked.
func (s *S) RecvUnderWriteLock() int {
	s.rw.Lock()
	v := <-s.ch
	s.rw.Unlock()
	return v
}
`},
	})
	diags := runNamed(t, m, DefaultConfig(), "mutexhygiene")
	wantDiag(t, diags, "mutexhygiene", "return between s.mu.Lock() and its deferred release", 1)
	wantDiag(t, diags, "mutexhygiene", "never released in this function", 1)
	wantDiag(t, diags, "mutexhygiene", "return while s.mu is held", 1)
	wantDiag(t, diags, "mutexhygiene", "channel send while s.rw is write-locked", 1)
	wantDiag(t, diags, "mutexhygiene", "channel receive while s.rw is write-locked", 1)
}

func TestMutexHygieneNegative(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"app": {"app.go": `package app

import "sync"

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	n  int
}

// The canonical shape.
func (s *S) Deferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Inline release on every path.
func (s *S) Inline(cond bool) int {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return 1
	}
	s.mu.Unlock()
	return 0
}

// Deferred closure releasing the lock counts as a release.
func (s *S) DeferredClosure() {
	s.mu.Lock()
	defer func() {
		s.n++
		s.mu.Unlock()
	}()
	s.n++
}

// Read locks may overlap channel traffic: readers do not starve readers.
func (s *S) SendUnderReadLock(v int) {
	s.rw.RLock()
	s.ch <- v
	s.rw.RUnlock()
}

// A plain Mutex across a send is a throughput question, not the RW
// write-starvation shape this check hunts.
func (s *S) SendUnderPlainLock(v int) {
	s.mu.Lock()
	s.ch <- v
	s.mu.Unlock()
}

// Unlock/relock inside a loop body: state returns to locked each pass.
func (s *S) Batched(work []int) {
	s.mu.Lock()
	for range work {
		s.mu.Unlock()
		s.mu.Lock()
		s.n++
	}
	s.mu.Unlock()
}

// A goroutine spawned under the lock has its own locking discipline.
func (s *S) Spawns() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1
	}()
}
`},
	})
	wantNone(t, runNamed(t, m, DefaultConfig(), "mutexhygiene"))
}

// TestMutexHygieneCFGOnly covers shapes the old syntax-level walker could
// not see: leaks along goto edges, blocking calls after the deferred
// release is installed, and non-blocking selects (default clause) that the
// heuristic used to flag.
func TestMutexHygieneCFGOnly(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"app": {"app.go": `package app

import (
	"sync"
	"time"
)

type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	n  int
}

// The goto jumps over the only release: the return at out: executes with
// the lock held, which only a CFG edge can prove.
func (s *S) GotoLeak(cond bool) int {
	s.mu.Lock()
	if cond {
		goto out
	}
	s.mu.Unlock()
	return 0
out:
	return s.n
}

// Sleeping after the deferred release is installed still sleeps with the
// write lock held — the defer only runs at function exit.
func (s *S) SleepUnderDeferredLock() {
	s.rw.Lock()
	defer s.rw.Unlock()
	time.Sleep(time.Millisecond)
	s.n++
}

// A select with a default clause never blocks; the old heuristic flagged
// every select under a write lock.
func (s *S) NonBlockingKick() {
	s.rw.Lock()
	defer s.rw.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
	s.n++
}
`},
	})
	diags := runNamed(t, m, DefaultConfig(), "mutexhygiene")
	wantDiag(t, diags, "mutexhygiene", "return while s.mu is held", 1)
	wantDiag(t, diags, "mutexhygiene", "time.Sleep while s.rw is write-locked", 1)
	wantDiag(t, diags, "mutexhygiene", "select", 0)
	wantDiag(t, diags, "mutexhygiene", "channel send", 0)
}

func TestMutexHygieneSuppression(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"app": {"app.go": `package app

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

// A lock helper that hands the held lock to its caller.
func (s *S) lockForUpdate() {
	//lint:ignore mutexhygiene lock intentionally escapes; released by unlockAfterUpdate
	s.mu.Lock()
	s.n++
}

func (s *S) unlockAfterUpdate() {
	s.mu.Unlock()
}
`},
	})
	wantNone(t, runNamed(t, m, DefaultConfig(), "mutexhygiene"))
}
