package nn

import (
	"math"
	"testing"

	"spidercache/internal/tensor"
	"spidercache/internal/xrand"
)

func testConfig() MLPConfig {
	return MLPConfig{InputDim: 4, HiddenDim: 16, EmbedDim: 8, Classes: 3, LR: 0.1, Momentum: 0.9, WeightDec: 0}
}

func TestConfigValidate(t *testing.T) {
	bad := []MLPConfig{
		{},
		{InputDim: 4, HiddenDim: 16, EmbedDim: 8, Classes: 1, LR: 0.1},
		{InputDim: 4, HiddenDim: 16, EmbedDim: 8, Classes: 3, LR: 0},
		{InputDim: 4, HiddenDim: 16, EmbedDim: 8, Classes: 3, LR: 0.1, Momentum: 1.0},
		{InputDim: 4, HiddenDim: 16, EmbedDim: 8, Classes: 3, LR: 0.1, WeightDec: -1},
		{InputDim: -1, HiddenDim: 16, EmbedDim: 8, Classes: 3, LR: 0.1},
		{InputDim: 4, HiddenDim: 0, EmbedDim: 8, Classes: 3, LR: 0.1},
		{InputDim: 4, HiddenDim: 16, EmbedDim: 0, Classes: 3, LR: 0.1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated unexpectedly", i)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestForwardShapes(t *testing.T) {
	m, err := NewMLP(testConfig(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(5, 4)
	fr := m.Forward(x, []int{0, 1, 2, 0, 1})
	if len(fr.Losses) != 5 || len(fr.Embeddings) != 5 || len(fr.Pred) != 5 {
		t.Fatalf("result sizes %d/%d/%d, want 5", len(fr.Losses), len(fr.Embeddings), len(fr.Pred))
	}
	if len(fr.Embeddings[0]) != 8 {
		t.Fatalf("embedding dim %d, want 8", len(fr.Embeddings[0]))
	}
	for _, l := range fr.Losses {
		if l <= 0 || math.IsNaN(l) {
			t.Fatalf("bad loss %g", l)
		}
	}
}

func TestForwardLabelMismatchPanics(t *testing.T) {
	m, _ := NewMLP(testConfig(), xrand.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on label mismatch")
		}
	}()
	m.Forward(tensor.New(2, 4), []int{0})
}

func TestBackwardWithoutForwardPanics(t *testing.T) {
	m, _ := NewMLP(testConfig(), xrand.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on Backward before Forward")
		}
	}()
	m.Backward(nil)
}

// makeBlobs builds a trivially separable 2-class problem.
func makeBlobs(n int, rng *xrand.Rand) (*tensor.Matrix, []int) {
	x := tensor.New(n, 4)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = i % 2
		sign := float64(labels[i]*2 - 1)
		for j := 0; j < 4; j++ {
			x.Set(i, j, sign*2+rng.NormFloat64()*0.3)
		}
	}
	return x, labels
}

func TestTrainingReducesLossAndLearns(t *testing.T) {
	rng := xrand.New(7)
	cfg := testConfig()
	cfg.Classes = 2
	m, err := NewMLP(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	x, labels := makeBlobs(64, rng)

	fr := m.Forward(x, labels)
	first := mean(fr.Losses)
	m.Backward(nil)
	for i := 0; i < 50; i++ {
		m.Forward(x, labels)
		m.Backward(nil)
	}
	fr = m.Forward(x, labels)
	last := mean(fr.Losses)
	m.Backward(nil)
	if last >= first {
		t.Fatalf("loss did not decrease: %g -> %g", first, last)
	}
	acc, _ := m.Evaluate(x, labels)
	if acc < 0.95 {
		t.Fatalf("accuracy %g on separable blobs, want >= 0.95", acc)
	}
}

func TestZeroWeightsFreezeModel(t *testing.T) {
	rng := xrand.New(9)
	cfg := testConfig()
	cfg.Classes = 2
	cfg.Momentum = 0 // momentum buffers would otherwise keep moving weights
	m, _ := NewMLP(cfg, rng)
	x, labels := makeBlobs(16, rng)

	before, _ := m.Evaluate(x, labels)
	_ = before
	m.Forward(x, labels)
	w := make([]float64, 16) // all zero: every sample's backprop skipped
	m.Backward(w)
	fr1 := m.Forward(x, labels)
	m.Backward(nil)
	fr2 := m.Forward(x, labels)
	m.Backward(nil)
	// After the all-zero step the losses must be identical to a fresh
	// forward (no update happened); after a real step they must change.
	if math.Abs(mean(fr1.Losses)-meanAfterFresh(cfg, rng2(9), x, labels)) > 1e-9 {
		t.Fatal("zero-weight Backward changed the model")
	}
	if mean(fr2.Losses) == mean(fr1.Losses) {
		t.Fatal("real Backward did not change the model")
	}
}

// meanAfterFresh replays one skipped step on an identical fresh model.
func meanAfterFresh(cfg MLPConfig, rng *xrand.Rand, x *tensor.Matrix, labels []int) float64 {
	m, _ := NewMLP(cfg, rng)
	m.Forward(x, labels)
	m.Backward(make([]float64, x.Rows))
	fr := m.Forward(x, labels)
	m.Backward(nil)
	return mean(fr.Losses)
}

func rng2(seed uint64) *xrand.Rand { return xrand.New(seed) }

func TestDeterministicInit(t *testing.T) {
	a, _ := NewMLP(testConfig(), xrand.New(5))
	b, _ := NewMLP(testConfig(), xrand.New(5))
	x := tensor.New(3, 4)
	for i := range x.Data {
		x.Data[i] = float64(i)
	}
	fa := a.Forward(x, []int{0, 1, 2})
	fb := b.Forward(x, []int{0, 1, 2})
	for i := range fa.Losses {
		if fa.Losses[i] != fb.Losses[i] {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestSetLR(t *testing.T) {
	m, _ := NewMLP(testConfig(), xrand.New(1))
	m.SetLR(0.01)
	if m.Config().LR != 0.01 {
		t.Fatalf("SetLR not applied: %g", m.Config().LR)
	}
	m.SetLR(-1) // ignored
	if m.Config().LR != 0.01 {
		t.Fatal("negative LR applied")
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
