// Package nn implements the trainable learner that stands in for the paper's
// PyTorch models.
//
// SpiderCache only consumes two signals from the model: per-sample loss and
// the embedding produced by the feature-extraction layer. A two-hidden-layer
// MLP trained with SGD+momentum on the synthetic datasets in
// internal/dataset produces both with authentic dynamics — embeddings
// cluster by class as training progresses, losses fall, and the variance of
// importance scores rises then falls (the paper's Fig 6c) — which is all the
// caching layer depends on. GPU cost characteristics of the paper's real
// architectures (ResNet18/50, AlexNet, VGG16) are modelled separately by
// Profile.
package nn

import (
	"fmt"
	"math"

	"spidercache/internal/tensor"
	"spidercache/internal/xrand"
)

// MLPConfig describes the classifier architecture.
type MLPConfig struct {
	InputDim  int     // feature dimensionality of the dataset
	HiddenDim int     // width of the first hidden layer
	EmbedDim  int     // width of the embedding (second hidden) layer
	Classes   int     // number of output classes
	LR        float64 // SGD learning rate
	Momentum  float64 // SGD momentum coefficient
	WeightDec float64 // L2 weight decay
}

// Validate reports a descriptive error for unusable configurations.
func (c MLPConfig) Validate() error {
	switch {
	case c.InputDim <= 0:
		return fmt.Errorf("nn: InputDim must be positive, got %d", c.InputDim)
	case c.HiddenDim <= 0:
		return fmt.Errorf("nn: HiddenDim must be positive, got %d", c.HiddenDim)
	case c.EmbedDim <= 0:
		return fmt.Errorf("nn: EmbedDim must be positive, got %d", c.EmbedDim)
	case c.Classes < 2:
		return fmt.Errorf("nn: Classes must be >= 2, got %d", c.Classes)
	case c.LR <= 0:
		return fmt.Errorf("nn: LR must be positive, got %g", c.LR)
	case c.Momentum < 0 || c.Momentum >= 1:
		return fmt.Errorf("nn: Momentum must be in [0,1), got %g", c.Momentum)
	case c.WeightDec < 0:
		return fmt.Errorf("nn: WeightDec must be non-negative, got %g", c.WeightDec)
	}
	return nil
}

// linear is a fully connected layer with SGD+momentum state.
type linear struct {
	w, b   *tensor.Matrix // w: in x out, b: 1 x out
	vw, vb *tensor.Matrix // momentum buffers
}

func newLinear(in, out int, rng *xrand.Rand) *linear {
	l := &linear{
		w:  tensor.New(in, out),
		b:  tensor.New(1, out),
		vw: tensor.New(in, out),
		vb: tensor.New(1, out),
	}
	// He initialisation, appropriate for ReLU networks.
	std := math.Sqrt(2 / float64(in))
	for i := range l.w.Data {
		l.w.Data[i] = rng.NormFloat64() * std
	}
	return l
}

// forward computes x*w + b.
func (l *linear) forward(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.MatMul(nil, x, l.w)
	out.AddRowVec(l.b.Row(0))
	return out
}

// backward consumes dOut (batch x out), returns dX (batch x in) and applies
// the SGD+momentum update with learning rate lr and weight decay wd.
func (l *linear) backward(x, dOut *tensor.Matrix, lr, mom, wd float64) *tensor.Matrix {
	dW := tensor.MatMulATB(nil, x, dOut)
	dB := dOut.ColSums()
	dX := tensor.MatMulABT(nil, dOut, l.w)

	for i, g := range dW.Data {
		g += wd * l.w.Data[i]
		l.vw.Data[i] = mom*l.vw.Data[i] + g
		l.w.Data[i] -= lr * l.vw.Data[i]
	}
	for j, g := range dB {
		l.vb.Data[j] = mom*l.vb.Data[j] + g
		l.b.Data[j] -= lr * l.vb.Data[j]
	}
	return dX
}

// MLP is a 3-layer classifier: input -> ReLU(hidden) -> ReLU(embed) -> logits.
// The second hidden activation is exposed as the per-sample embedding, the
// analogue of the paper's "feature extraction layer" output.
type MLP struct {
	cfg MLPConfig
	l1  *linear
	l2  *linear
	l3  *linear

	// forward caches for the most recent batch (consumed by Backward).
	x, h1, emb, probs *tensor.Matrix
	labels            []int
}

// NewMLP builds a classifier with deterministic He-initialised weights.
func NewMLP(cfg MLPConfig, rng *xrand.Rand) (*MLP, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &MLP{
		cfg: cfg,
		l1:  newLinear(cfg.InputDim, cfg.HiddenDim, rng),
		l2:  newLinear(cfg.HiddenDim, cfg.EmbedDim, rng),
		l3:  newLinear(cfg.EmbedDim, cfg.Classes, rng),
	}, nil
}

// Config returns the architecture the model was built with.
func (m *MLP) Config() MLPConfig { return m.cfg }

// SetLR changes the learning rate used by subsequent Backward calls; the
// trainer drives it with a cosine decay schedule.
func (m *MLP) SetLR(lr float64) {
	if lr > 0 {
		m.cfg.LR = lr
	}
}

// ForwardResult carries everything downstream consumers need from a forward
// pass: per-sample losses feed loss-based samplers, embeddings feed the
// graph-based IS algorithm, and predictions feed accuracy accounting.
type ForwardResult struct {
	Losses     []float64   // per-sample cross-entropy
	Embeddings [][]float64 // per-sample embedding rows (copies, safe to retain)
	Pred       []int       // argmax class per sample
}

// Forward runs the batch x (rows = samples) with integer labels through the
// network, caching activations for a subsequent Backward call.
func (m *MLP) Forward(x *tensor.Matrix, labels []int) ForwardResult {
	if x.Rows != len(labels) {
		panic(fmt.Sprintf("nn: batch rows %d != labels %d", x.Rows, len(labels)))
	}
	m.x = x
	m.h1 = m.l1.forward(x)
	m.h1.ReLU()
	m.emb = m.l2.forward(m.h1)
	m.emb.ReLU()
	logits := m.l3.forward(m.emb)
	logits.SoftmaxRows()
	m.probs = logits
	m.labels = labels

	emb := make([][]float64, x.Rows)
	for i := range emb {
		row := make([]float64, m.cfg.EmbedDim)
		copy(row, m.emb.Row(i))
		emb[i] = row
	}
	return ForwardResult{
		Losses:     tensor.CrossEntropyRows(m.probs, labels),
		Embeddings: emb,
		Pred:       m.probs.ArgmaxRows(),
	}
}

// Backward applies one SGD step using the cached forward state. weights is
// an optional per-sample loss weight (nil = uniform mean); a zero weight
// reproduces iCache's compute-bound "skip backprop for this sample"
// behaviour. Backward panics if no forward pass is cached.
func (m *MLP) Backward(weights []float64) {
	if m.probs == nil {
		panic("nn: Backward called before Forward")
	}
	dLogits := m.probs // consumed in place
	tensor.SoftmaxCrossEntropyGrad(dLogits, m.labels, weights)

	dEmb := m.l3.backward(m.emb, dLogits, m.cfg.LR, m.cfg.Momentum, m.cfg.WeightDec)
	tensor.ReLUBackward(dEmb, m.emb)
	dH1 := m.l2.backward(m.h1, dEmb, m.cfg.LR, m.cfg.Momentum, m.cfg.WeightDec)
	tensor.ReLUBackward(dH1, m.h1)
	m.l1.backward(m.x, dH1, m.cfg.LR, m.cfg.Momentum, m.cfg.WeightDec)

	m.probs = nil // forward state consumed
}

// Evaluate computes Top-1 accuracy and mean loss on the given set without
// touching the training caches or weights.
func (m *MLP) Evaluate(x *tensor.Matrix, labels []int) (acc, meanLoss float64) {
	h1 := m.l1.forward(x)
	h1.ReLU()
	emb := m.l2.forward(h1)
	emb.ReLU()
	logits := m.l3.forward(emb)
	logits.SoftmaxRows()
	losses := tensor.CrossEntropyRows(logits, labels)
	pred := logits.ArgmaxRows()
	var correct int
	var sum float64
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
		sum += losses[i]
	}
	n := float64(len(labels))
	return float64(correct) / n, sum / n
}
