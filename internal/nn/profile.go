package nn

import (
	"fmt"
	"time"
)

// Profile captures the *cost model* of one of the paper's evaluated DNN
// architectures. The trainer charges these durations to the virtual clock;
// the actual learning is done by the shared MLP. Stage timings come from the
// paper's Table 1 (per-mini-batch averages):
//
//	Model     Stage1(load+fwd)  Stage2(bwd+opt)  IS
//	ResNet18  42ms              35ms             16ms
//	ResNet50  48ms              37ms             18ms
//	AlexNet   62ms              33ms             35ms
//	VGG16     56ms              28ms             31ms
//
// Stage1 in Table 1 includes data loading; ForwardCost below is the compute
// share of Stage1 (Stage1 minus the average loading cost), with loading
// billed separately through the storage simulator so that cache hits shorten
// it, per Fig 3(a)'s observation that loading alone exceeds 60% of epoch
// time when uncached.
type Profile struct {
	Name         string
	ForwardCost  time.Duration // per-batch forward compute (Stage1 compute share)
	BackwardCost time.Duration // per-batch backward+optimiser (Stage2)
	ISCost       time.Duration // per-batch graph-based IS computation
	EmbedDim     int           // embedding width used for the semantic graph
	// DeepOverlap marks models whose IS cost is long enough that the
	// pipeline must also overlap with the next batch's Stage1 (Fig 12b:
	// AlexNet, VGG16).
	DeepOverlap bool
}

// Profiles for the four architectures in the paper's evaluation.
var (
	ResNet18 = Profile{Name: "ResNet18", ForwardCost: 14 * time.Millisecond, BackwardCost: 35 * time.Millisecond, ISCost: 16 * time.Millisecond, EmbedDim: 32}
	ResNet50 = Profile{Name: "ResNet50", ForwardCost: 18 * time.Millisecond, BackwardCost: 37 * time.Millisecond, ISCost: 18 * time.Millisecond, EmbedDim: 48}
	AlexNet  = Profile{Name: "AlexNet", ForwardCost: 24 * time.Millisecond, BackwardCost: 33 * time.Millisecond, ISCost: 35 * time.Millisecond, EmbedDim: 64, DeepOverlap: true}
	VGG16    = Profile{Name: "VGG16", ForwardCost: 22 * time.Millisecond, BackwardCost: 28 * time.Millisecond, ISCost: 31 * time.Millisecond, EmbedDim: 64, DeepOverlap: true}
)

// AllProfiles lists the evaluated architectures in the paper's order.
func AllProfiles() []Profile { return []Profile{ResNet18, ResNet50, AlexNet, VGG16} }

// ProfileByName resolves a profile from its case-sensitive name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range AllProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("nn: unknown model profile %q", name)
}
