package nn

import (
	"testing"

	"spidercache/internal/tensor"
	"spidercache/internal/xrand"
)

func benchModel(b *testing.B) (*MLP, *tensor.Matrix, []int) {
	b.Helper()
	rng := xrand.New(1)
	cfg := MLPConfig{InputDim: 32, HiddenDim: 128, EmbedDim: 32, Classes: 10, LR: 0.05, Momentum: 0.9}
	m, err := NewMLP(cfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(64, 32)
	labels := make([]int, 64)
	for i := range labels {
		labels[i] = i % 10
		for j := 0; j < 32; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
	}
	return m, x, labels
}

func BenchmarkForward(b *testing.B) {
	m, x, labels := benchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, labels)
	}
}

func BenchmarkForwardBackward(b *testing.B) {
	m, x, labels := benchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, labels)
		m.Backward(nil)
	}
}
