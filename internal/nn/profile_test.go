package nn

import "testing"

func TestProfileByName(t *testing.T) {
	for _, want := range AllProfiles() {
		got, err := ProfileByName(want.Name)
		if err != nil {
			t.Fatalf("ProfileByName(%q): %v", want.Name, err)
		}
		if got.Name != want.Name {
			t.Fatalf("got %q", got.Name)
		}
	}
	if _, err := ProfileByName("LeNet"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestProfilesMatchPaperTable1(t *testing.T) {
	// Stage2 and IS columns come straight from the paper's Table 1.
	cases := map[string]struct{ backwardMs, isMs int }{
		"ResNet18": {35, 16},
		"ResNet50": {37, 18},
		"AlexNet":  {33, 35},
		"VGG16":    {28, 31},
	}
	for _, p := range AllProfiles() {
		want := cases[p.Name]
		if int(p.BackwardCost.Milliseconds()) != want.backwardMs {
			t.Errorf("%s Stage2 = %v, want %dms", p.Name, p.BackwardCost, want.backwardMs)
		}
		if int(p.ISCost.Milliseconds()) != want.isMs {
			t.Errorf("%s IS = %v, want %dms", p.Name, p.ISCost, want.isMs)
		}
	}
}

func TestDeepOverlapModels(t *testing.T) {
	// Fig 12(b): only AlexNet and VGG16 need the deeper pipeline.
	for _, p := range AllProfiles() {
		wantDeep := p.Name == "AlexNet" || p.Name == "VGG16"
		if p.DeepOverlap != wantDeep {
			t.Errorf("%s DeepOverlap = %v, want %v", p.Name, p.DeepOverlap, wantDeep)
		}
	}
}

func TestProfileEmbedDims(t *testing.T) {
	for _, p := range AllProfiles() {
		if p.EmbedDim <= 0 {
			t.Errorf("%s has EmbedDim %d", p.Name, p.EmbedDim)
		}
		if p.ForwardCost <= 0 || p.BackwardCost <= 0 || p.ISCost <= 0 {
			t.Errorf("%s has non-positive stage cost", p.Name)
		}
	}
}
