package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// baseline returns the current goroutine IDs as a waitForExit base set.
func baseline() map[string]bool {
	base := map[string]bool{}
	for _, g := range liveGoroutines() {
		base[g.id] = true
	}
	return base
}

func TestDetectsLeakedGoroutine(t *testing.T) {
	base := baseline()
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started

	leaked := waitForExit(base, &config{}, 50*time.Millisecond)
	if len(leaked) != 1 {
		t.Fatalf("want 1 leaked goroutine, got %d", len(leaked))
	}
	if !strings.Contains(leaked[0].stack, "TestDetectsLeakedGoroutine") {
		t.Errorf("leak report does not name the spawning test:\n%s", leaked[0].stack)
	}

	// Released, the goroutine must drop out within the retry window.
	close(block)
	if leaked := waitForExit(base, &config{}, retryDeadline); len(leaked) != 0 {
		t.Errorf("goroutine still reported after release: %d", len(leaked))
	}
}

func TestWaitsForSlowExit(t *testing.T) {
	base := baseline()
	go func() {
		time.Sleep(30 * time.Millisecond)
	}()
	// The goroutine is alive right now but exits well within the retry
	// window: no leak.
	if leaked := waitForExit(base, &config{}, retryDeadline); len(leaked) != 0 {
		t.Errorf("slow-exiting goroutine reported as a leak: %d", len(leaked))
	}
}

func TestIgnoreFunc(t *testing.T) {
	base := baseline()
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	go parkedWorker(block, started)
	<-started

	cfg := &config{}
	IgnoreFunc("leakcheck.parkedWorker")(cfg)
	if leaked := waitForExit(base, cfg, 50*time.Millisecond); len(leaked) != 0 {
		t.Errorf("ignored goroutine still reported: %d", len(leaked))
	}
	if leaked := waitForExit(base, &config{}, 50*time.Millisecond); len(leaked) != 1 {
		t.Errorf("without the ignore, want 1 leak, got %d", len(leaked))
	}
}

func parkedWorker(block, started chan struct{}) {
	close(started)
	<-block
}

// TestCheckPassesOnCleanTest is the happy-path end-to-end use.
func TestCheckPassesOnCleanTest(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
