// Package leakcheck asserts that a test leaves no goroutines behind. A test
// calls Check(t) before spawning anything; at cleanup time every goroutine
// that did not exist at the Check call must have exited. Because goroutine
// teardown races test completion (Close returns before the serving loop
// observes it), the comparison retries with backoff before declaring a leak.
//
// Goroutines that park forever by design — worker pools with no shutdown,
// like internal/par's kernel workers — are excluded with IgnoreFunc:
//
//	leakcheck.Check(t, leakcheck.IgnoreFunc("internal/par."))
//
// The package is test-only infrastructure: it has no dependencies beyond
// runtime and is safe to wire into any suite.
package leakcheck

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// retryDeadline bounds how long cleanup waits for stragglers to exit.
const retryDeadline = 2 * time.Second

// config collects the options of one Check call.
type config struct {
	ignores []string
}

// Option customises one Check call.
type Option func(*config)

// IgnoreFunc excludes goroutines whose stack trace contains substr —
// typically a package-qualified function prefix like "internal/par.". Use it
// for goroutines that intentionally outlive the test.
func IgnoreFunc(substr string) Option {
	return func(c *config) { c.ignores = append(c.ignores, substr) }
}

// Check snapshots the live goroutines and registers a cleanup that fails t
// if goroutines created after this call are still running when the test
// ends. Call it before the code under test spawns anything.
func Check(t testing.TB, opts ...Option) {
	t.Helper()
	cfg := &config{}
	for _, o := range opts {
		o(cfg)
	}
	base := map[string]bool{}
	for _, g := range liveGoroutines() {
		base[g.id] = true
	}
	t.Cleanup(func() {
		if leaked := waitForExit(base, cfg, retryDeadline); len(leaked) > 0 {
			var b strings.Builder
			for _, g := range leaked {
				fmt.Fprintf(&b, "goroutine %s:\n%s\n", g.id, g.stack)
			}
			t.Errorf("leakcheck: %d goroutine(s) leaked by this test:\n%s", len(leaked), b.String())
		}
	})
}

// waitForExit polls until no unexpected goroutines remain or the deadline
// expires, returning the survivors.
func waitForExit(base map[string]bool, cfg *config, deadline time.Duration) []goroutine {
	var leaked []goroutine
	pause := time.Millisecond
	for start := time.Now(); ; {
		leaked = leaked[:0]
		for _, g := range liveGoroutines() {
			if !base[g.id] && !ignorable(g, cfg) {
				leaked = append(leaked, g)
			}
		}
		if len(leaked) == 0 || time.Since(start) > deadline {
			return leaked
		}
		time.Sleep(pause)
		if pause < 100*time.Millisecond {
			pause *= 2
		}
	}
}

// ignorable reports whether g is background machinery or matches an
// IgnoreFunc option: the Go runtime and the testing framework own a few
// goroutines whose lifetime the test cannot control.
func ignorable(g goroutine, cfg *config) bool {
	for _, skip := range []string{
		"testing.tRunner",          // sibling parallel tests
		"testing.(*T).Run",         // subtest drivers
		"runtime.goexit0",          // mid-teardown goroutines
		"runtime_mcall",            // scheduler internals caught mid-switch
		"os/signal.signal_recv",    // signal delivery, started lazily
		"runtime.ReadTrace",        // execution tracer
		"runtime.ensureSigM",       // signal mask thread
		"leakcheck.liveGoroutines", // this package's own snapshot
	} {
		if strings.Contains(g.stack, skip) {
			return true
		}
	}
	for _, skip := range cfg.ignores {
		if strings.Contains(g.stack, skip) {
			return true
		}
	}
	return false
}

// goroutine is one parsed stanza of a full runtime.Stack dump.
type goroutine struct {
	id    string
	stack string
}

// liveGoroutines captures and parses the full goroutine dump. Goroutine IDs
// are never reused within a process, so they key the baseline comparison.
func liveGoroutines() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []goroutine
	for _, stanza := range strings.Split(string(buf), "\n\n") {
		header, rest, _ := strings.Cut(stanza, "\n")
		if !strings.HasPrefix(header, "goroutine ") {
			continue
		}
		id, _, ok := strings.Cut(strings.TrimPrefix(header, "goroutine "), " ")
		if !ok {
			continue
		}
		out = append(out, goroutine{id: id, stack: rest})
	}
	return out
}
