package dataset

// The presets below mirror the paper's three evaluation datasets at a scale
// suitable for a single-CPU simulation. Scale multiplies the sample counts;
// scale 1.0 is the repository default used by `spiderbench`, and tests use
// smaller scales. Payload means approximate the real datasets' average
// stored image sizes (CIFAR ≈ 3 KiB raw 32x32x3; ImageNet JPEG ≈ 110 KiB).

func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// CIFAR10Like mirrors CIFAR-10: 10 coarse classes, easy separation.
func CIFAR10Like(scale float64, seed uint64) Config {
	return Config{
		Name:         "CIFAR10-like",
		Classes:      10,
		TrainSize:    scaled(4000, scale),
		TestSize:     scaled(1600, scale),
		Dim:          32,
		ClusterStd:   1.0,
		BoundaryFrac: 0.20,
		IsolatedFrac: 0.05,
		HardFrac:     0.08,
		PayloadMean:  3 << 10,
		Seed:         seed,
	}
}

// CIFAR100Like mirrors CIFAR-100: 100 fine-grained classes, harder task.
func CIFAR100Like(scale float64, seed uint64) Config {
	return Config{
		Name:         "CIFAR100-like",
		Classes:      100,
		TrainSize:    scaled(4000, scale),
		TestSize:     scaled(1600, scale),
		Dim:          48,
		ClusterStd:   1.25,
		CenterRadius: 5.2,
		BoundaryFrac: 0.30,
		IsolatedFrac: 0.05,
		HardFrac:     0.08,
		PayloadMean:  3 << 10,
		Seed:         seed,
	}
}

// ImageNetLike mirrors ImageNet's regime: many classes, many samples, large
// payloads. Class and sample counts are scaled to simulation size.
func ImageNetLike(scale float64, seed uint64) Config {
	return Config{
		Name:         "ImageNet-like",
		Classes:      200,
		TrainSize:    scaled(12000, scale),
		TestSize:     scaled(2000, scale),
		Dim:          64,
		ClusterStd:   1.1,
		CenterRadius: 7.0,
		BoundaryFrac: 0.25,
		IsolatedFrac: 0.05,
		HardFrac:     0.06,
		PayloadMean:  110 << 10,
		Seed:         seed,
	}
}
