package dataset

import (
	"math"
	"testing"
)

func smallConfig() Config {
	return Config{
		Name: "test", Classes: 4, TrainSize: 800, TestSize: 200, Dim: 8,
		ClusterStd: 1.0, BoundaryFrac: 0.2, IsolatedFrac: 0.05, HardFrac: 0.1,
		PayloadMean: 1024, Seed: 1,
	}
}

func TestValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Classes = 1 },
		func(c *Config) { c.TrainSize = 2 },
		func(c *Config) { c.TestSize = 0 },
		func(c *Config) { c.Dim = 1 },
		func(c *Config) { c.ClusterStd = 0 },
		func(c *Config) { c.PayloadMean = 0 },
		func(c *Config) { c.BoundaryFrac = -0.1 },
		func(c *Config) { c.BoundaryFrac = 0.9; c.HardFrac = 0.3 },
	}
	for i, mutate := range bad {
		cfg := smallConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(smallConfig())
	for i := range a.Features {
		if a.Labels[i] != b.Labels[i] || a.Kinds[i] != b.Kinds[i] || a.Payload[i] != b.Payload[i] {
			t.Fatalf("sample %d differs between same-seed datasets", i)
		}
		for j := range a.Features[i] {
			if a.Features[i][j] != b.Features[i][j] {
				t.Fatalf("feature (%d,%d) differs", i, j)
			}
		}
	}
}

func TestSeedChangesData(t *testing.T) {
	cfg := smallConfig()
	a, _ := New(cfg)
	cfg.Seed = 2
	b, _ := New(cfg)
	same := 0
	for i := range a.Features {
		if a.Features[i][0] == b.Features[i][0] {
			same++
		}
	}
	if same > len(a.Features)/10 {
		t.Fatalf("%d/%d identical first features across seeds", same, len(a.Features))
	}
}

func TestShapesAndRanges(t *testing.T) {
	cfg := smallConfig()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != cfg.TrainSize {
		t.Fatalf("Len = %d", d.Len())
	}
	if len(d.TestFeatures) != cfg.TestSize || len(d.TestLabels) != cfg.TestSize || len(d.TestKinds) != cfg.TestSize {
		t.Fatal("test split sizes wrong")
	}
	for i, lab := range d.Labels {
		if lab < 0 || lab >= cfg.Classes {
			t.Fatalf("label %d out of range", lab)
		}
		if len(d.Features[i]) != cfg.Dim {
			t.Fatalf("feature dim %d", len(d.Features[i]))
		}
	}
}

func TestPayloadBounds(t *testing.T) {
	cfg := smallConfig()
	d, _ := New(cfg)
	var total int64
	for _, p := range d.Payload {
		if p < cfg.PayloadMean/4 || p > cfg.PayloadMean*4 {
			t.Fatalf("payload %d outside clamp", p)
		}
		total += int64(p)
	}
	if d.TotalBytes() != total {
		t.Fatalf("TotalBytes = %d, want %d", d.TotalBytes(), total)
	}
	// Mean should be in the right ballpark.
	mean := float64(total) / float64(len(d.Payload))
	if mean < float64(cfg.PayloadMean)*0.7 || mean > float64(cfg.PayloadMean)*1.4 {
		t.Fatalf("payload mean %.0f vs configured %d", mean, cfg.PayloadMean)
	}
}

func TestPopulationFractions(t *testing.T) {
	cfg := smallConfig()
	cfg.TrainSize = 20000
	d, _ := New(cfg)
	counts := map[Kind]int{}
	for _, k := range d.Kinds {
		counts[k]++
	}
	frac := func(k Kind) float64 { return float64(counts[k]) / float64(d.Len()) }
	if math.Abs(frac(Hard)-cfg.HardFrac) > 0.02 {
		t.Errorf("hard fraction %.3f, want %.2f", frac(Hard), cfg.HardFrac)
	}
	if math.Abs(frac(Boundary)-cfg.BoundaryFrac) > 0.02 {
		t.Errorf("boundary fraction %.3f, want %.2f", frac(Boundary), cfg.BoundaryFrac)
	}
	if math.Abs(frac(Isolated)-cfg.IsolatedFrac) > 0.02 {
		t.Errorf("isolated fraction %.3f, want %.2f", frac(Isolated), cfg.IsolatedFrac)
	}
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// TestHardSamplesNearWrongClass checks the Fig 4(d) construction: hard
// samples are closer to the next class's centroid than to their own.
func TestHardSamplesNearWrongClass(t *testing.T) {
	cfg := smallConfig()
	d, _ := New(cfg)
	checked := 0
	for i, k := range d.Kinds {
		if k != Hard {
			continue
		}
		own := dist(d.Features[i], d.Center(d.Labels[i]))
		other := dist(d.Features[i], d.Center((d.Labels[i]+1)%cfg.Classes))
		if other >= own {
			t.Errorf("hard sample %d closer to own centroid (%.2f vs %.2f)", i, own, other)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no hard samples generated")
	}
}

// TestEasySamplesNearOwnClass checks that easy samples sit closest to their
// own centroid among all centroids.
func TestEasySamplesNearOwnClass(t *testing.T) {
	cfg := smallConfig()
	d, _ := New(cfg)
	misplaced, checked := 0, 0
	for i, k := range d.Kinds {
		if k != Easy {
			continue
		}
		checked++
		own := dist(d.Features[i], d.Center(d.Labels[i]))
		for c := 0; c < cfg.Classes; c++ {
			if c != d.Labels[i] && dist(d.Features[i], d.Center(c)) < own {
				misplaced++
				break
			}
		}
	}
	if checked == 0 {
		t.Fatal("no easy samples")
	}
	if frac := float64(misplaced) / float64(checked); frac > 0.05 {
		t.Fatalf("%.1f%% of easy samples misplaced", frac*100)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{Easy: "easy", Boundary: "boundary", Isolated: "isolated", Hard: "hard", Kind(9): "Kind(9)"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, cfg := range []Config{CIFAR10Like(1, 1), CIFAR100Like(1, 1), ImageNetLike(1, 1)} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", cfg.Name, err)
		}
	}
	// Tiny scales stay valid.
	for _, cfg := range []Config{CIFAR10Like(0.01, 1), CIFAR100Like(0.1, 1), ImageNetLike(0.05, 1)} {
		if _, err := New(cfg); err != nil {
			t.Errorf("preset %s at small scale: %v", cfg.Name, err)
		}
	}
}

func TestCenterRadiusDefault(t *testing.T) {
	cfg := smallConfig()
	d, _ := New(cfg)
	r := math.Sqrt(sq(d.Center(0)))
	if math.Abs(r-3) > 1e-9 {
		t.Fatalf("default radius %.3f, want 3", r)
	}
	cfg.CenterRadius = 5
	d2, _ := New(cfg)
	if r2 := math.Sqrt(sq(d2.Center(0))); math.Abs(r2-5) > 1e-9 {
		t.Fatalf("radius %.3f, want 5", r2)
	}
}

func sq(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}
