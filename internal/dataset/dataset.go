// Package dataset synthesises the training workloads that stand in for the
// paper's CIFAR-10, CIFAR-100 and ImageNet datasets.
//
// Samples are drawn from a Gaussian mixture with one centroid per class.
// Four populations are planted deliberately, matching the sample states the
// paper's Fig 8 attributes to its graph-based importance score:
//
//   - easy:     tight around the class centroid -> well-classified, low score
//   - boundary: between two class centroids -> medium score
//   - isolated: far from every centroid -> medium score
//   - hard:     a small satellite subcluster of the class placed close to a
//     *different* class's centroid (the paper's Fig 4(d) group: rare,
//     consistently-labelled, initially misclassified) -> top score
//
// Hard samples are learnable — they form a coherent subcluster — so
// prioritising them with importance sampling genuinely improves accuracy,
// exactly the effect the paper's IS comparison (Fig 13) relies on.
//
// Every sample carries a payload size in bytes so the storage simulator can
// charge realistic transfer times, and a stable integer ID used as the cache
// key throughout the system.
package dataset

import (
	"fmt"
	"math"

	"spidercache/internal/xrand"
)

// Kind labels the planted population a sample belongs to.
type Kind uint8

// Planted sample populations (see package comment).
const (
	Easy Kind = iota
	Boundary
	Isolated
	Hard
)

// String returns the lowercase population name.
func (k Kind) String() string {
	switch k {
	case Easy:
		return "easy"
	case Boundary:
		return "boundary"
	case Isolated:
		return "isolated"
	case Hard:
		return "hard"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Config describes a synthetic dataset.
type Config struct {
	Name       string
	Classes    int
	TrainSize  int // total training samples
	TestSize   int // held-out evaluation samples
	Dim        int // input feature dimensionality
	ClusterStd float64
	// CenterRadius is the hypersphere radius class centroids are placed
	// on; it controls task difficulty relative to ClusterStd*sqrt(Dim)
	// noise. 0 means the default of 3.
	CenterRadius float64
	// Fractions of the planted populations; the remainder is Easy.
	BoundaryFrac float64
	IsolatedFrac float64
	HardFrac     float64
	// PayloadMean is the average stored size of one sample in bytes
	// (log-normal distributed per sample).
	PayloadMean int
	Seed        uint64
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Classes < 2:
		return fmt.Errorf("dataset: Classes must be >= 2, got %d", c.Classes)
	case c.TrainSize < c.Classes:
		return fmt.Errorf("dataset: TrainSize %d < Classes %d", c.TrainSize, c.Classes)
	case c.TestSize <= 0:
		return fmt.Errorf("dataset: TestSize must be positive, got %d", c.TestSize)
	case c.Dim <= 1:
		return fmt.Errorf("dataset: Dim must be > 1, got %d", c.Dim)
	case c.ClusterStd <= 0:
		return fmt.Errorf("dataset: ClusterStd must be positive, got %g", c.ClusterStd)
	case c.PayloadMean <= 0:
		return fmt.Errorf("dataset: PayloadMean must be positive, got %d", c.PayloadMean)
	}
	frac := c.BoundaryFrac + c.IsolatedFrac + c.HardFrac
	if c.BoundaryFrac < 0 || c.IsolatedFrac < 0 || c.HardFrac < 0 || frac > 1 {
		return fmt.Errorf("dataset: population fractions invalid (sum %.3f)", frac)
	}
	return nil
}

// Dataset is a fully materialised synthetic dataset.
type Dataset struct {
	Config   Config
	Features [][]float64 // train inputs, indexed by sample ID
	Labels   []int       // train labels
	Kinds    []Kind      // planted population per train sample
	Payload  []int       // stored bytes per train sample

	TestFeatures [][]float64
	TestLabels   []int
	TestKinds    []Kind

	centers    [][]float64
	satellites [][]float64 // per-class hard-subcluster centroids
}

// New synthesises a dataset deterministically from cfg.Seed.
func New(cfg Config) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := xrand.New(cfg.Seed)
	d := &Dataset{Config: cfg}
	radius := cfg.CenterRadius
	if radius == 0 {
		radius = 3
	}
	d.centers = makeCenters(cfg.Classes, cfg.Dim, radius, rng)
	// Each class's hard subcluster sits 72% of the way towards the next
	// class's centroid: far enough to be misclassified until the model has
	// seen it many times, coherent enough to be learnable. The gap between
	// uniform sampling and importance sampling at a fixed epoch budget
	// comes from how quickly these satellites get learnt.
	d.satellites = make([][]float64, cfg.Classes)
	for c := range d.satellites {
		other := (c + 1) % cfg.Classes
		third := (c + 2) % cfg.Classes
		v := make([]float64, cfg.Dim)
		for j := range v {
			// Offset the subcluster off the c->other axis (towards a third
			// centroid) so learning it does not distort the boundary region
			// between c and other where the Boundary population lives.
			v[j] = 0.26*d.centers[c][j] + 0.62*d.centers[other][j] + 0.30*d.centers[third][j]
		}
		d.satellites[c] = v
	}

	d.Features = make([][]float64, cfg.TrainSize)
	d.Labels = make([]int, cfg.TrainSize)
	d.Kinds = make([]Kind, cfg.TrainSize)
	d.Payload = make([]int, cfg.TrainSize)
	for i := 0; i < cfg.TrainSize; i++ {
		kind := pickKind(cfg, rng)
		label, x := d.sampleOf(kind, rng)
		d.Features[i] = x
		d.Labels[i] = label
		d.Kinds[i] = kind
		d.Payload[i] = payloadSize(cfg.PayloadMean, rng)
	}

	d.TestFeatures = make([][]float64, cfg.TestSize)
	d.TestLabels = make([]int, cfg.TestSize)
	d.TestKinds = make([]Kind, cfg.TestSize)
	for i := 0; i < cfg.TestSize; i++ {
		// The test distribution mirrors training: mostly easy samples,
		// plus the boundary and hard populations — so learning the hard
		// subclusters pays off in held-out accuracy.
		kind := Easy
		switch u := rng.Float64(); {
		case u < cfg.HardFrac:
			kind = Hard
		case u < cfg.HardFrac+cfg.BoundaryFrac:
			kind = Boundary
		}
		label, x := d.sampleOf(kind, rng)
		d.TestFeatures[i] = x
		d.TestLabels[i] = label
		d.TestKinds[i] = kind
	}
	return d, nil
}

// Len returns the number of training samples.
func (d *Dataset) Len() int { return len(d.Features) }

// TotalBytes returns the summed payload size of the training set.
func (d *Dataset) TotalBytes() int64 {
	var t int64
	for _, p := range d.Payload {
		t += int64(p)
	}
	return t
}

// Center returns the (read-only) centroid of class c; exported for tests and
// diagnostics.
func (d *Dataset) Center(c int) []float64 { return d.centers[c] }

func pickKind(cfg Config, rng *xrand.Rand) Kind {
	u := rng.Float64()
	switch {
	case u < cfg.HardFrac:
		return Hard
	case u < cfg.HardFrac+cfg.IsolatedFrac:
		return Isolated
	case u < cfg.HardFrac+cfg.IsolatedFrac+cfg.BoundaryFrac:
		return Boundary
	default:
		return Easy
	}
}

func (d *Dataset) sampleOf(kind Kind, rng *xrand.Rand) (label int, x []float64) {
	cfg := d.Config
	label = rng.Intn(cfg.Classes)
	x = make([]float64, cfg.Dim)
	std := cfg.ClusterStd
	switch kind {
	case Easy:
		// Tight clusters: easy samples are highly redundant (any modest
		// subset teaches the same decision boundary), mirroring the
		// duplicate-heavy nature of real training sets the paper leans on.
		for j := range x {
			x[j] = d.centers[label][j] + rng.NormFloat64()*std*0.35
		}
	case Boundary:
		other := (label + 1 + rng.Intn(cfg.Classes-1)) % cfg.Classes
		// Mixture of two class centroids, biased to the sample's own side
		// of the midpoint so the label remains learnable (hard but not
		// irreducible noise).
		w := 0.50 + 0.25*rng.Float64()
		for j := range x {
			mid := w*d.centers[label][j] + (1-w)*d.centers[other][j]
			x[j] = mid + rng.NormFloat64()*std*0.8
		}
	case Isolated:
		// Far from every centroid: the class centroid pushed outward
		// with heavy noise.
		for j := range x {
			x[j] = d.centers[label][j]*2.5 + rng.NormFloat64()*std*3
		}
	case Hard:
		// Rare satellite subcluster: correct label, but located near the
		// next class's centroid (tight so it is learnable).
		for j := range x {
			x[j] = d.satellites[label][j] + rng.NormFloat64()*std*0.32
		}
	}
	return label, x
}

// makeCenters places class centroids at random directions on a hypersphere
// of the given radius so that neighbouring classes overlap mildly.
func makeCenters(classes, dim int, radius float64, rng *xrand.Rand) [][]float64 {
	centers := make([][]float64, classes)
	for c := range centers {
		v := make([]float64, dim)
		var norm float64
		for j := range v {
			v[j] = rng.NormFloat64()
			norm += v[j] * v[j]
		}
		norm = math.Sqrt(norm)
		for j := range v {
			v[j] = v[j] / norm * radius
		}
		centers[c] = v
	}
	return centers
}

// payloadSize draws a log-normal-ish payload around the configured mean,
// clamped to [mean/4, mean*4].
func payloadSize(mean int, rng *xrand.Rand) int {
	f := math.Exp(rng.NormFloat64() * 0.35)
	s := int(float64(mean) * f)
	if s < mean/4 {
		s = mean / 4
	}
	if s > mean*4 {
		s = mean * 4
	}
	return s
}
