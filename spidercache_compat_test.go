package spidercache

// API-compat tests for the v1 entry points: Train(TrainConfig) and the
// 5-arg RunExperiment must keep compiling and behave identically to the
// redesigned TrainWith / RenderExperiment APIs.

import (
	"math"
	"strings"
	"testing"

	"spidercache/internal/telemetry"
)

// TestTrainConfigCompat pins the old struct API against the functional
// options: identical settings must produce identical runs.
func TestTrainConfigCompat(t *testing.T) {
	ds := tinyCIFAR(t)
	old, err := Train(TrainConfig{
		Dataset: ds,
		Policy:  PolicySpiderCache,
		Epochs:  2,
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := TrainWith(ds,
		WithPolicy(PolicySpiderCache),
		WithEpochs(2),
		WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	if old.Policy != opt.Policy || len(old.Epochs) != len(opt.Epochs) {
		t.Fatalf("shape mismatch: %s/%d vs %s/%d", old.Policy, len(old.Epochs), opt.Policy, len(opt.Epochs))
	}
	if old.TotalTime != opt.TotalTime {
		t.Fatalf("TotalTime %v != %v", old.TotalTime, opt.TotalTime)
	}
	if math.Abs(old.FinalAcc-opt.FinalAcc) > 1e-12 {
		t.Fatalf("FinalAcc %v != %v", old.FinalAcc, opt.FinalAcc)
	}
	for i := range old.Epochs {
		if old.Epochs[i] != opt.Epochs[i] {
			t.Fatalf("epoch %d diverged: %+v vs %+v", i, old.Epochs[i], opt.Epochs[i])
		}
	}
}

// TestRunExperimentCompat pins the deprecated boolean-flag wrapper against
// RenderExperiment.
func TestRunExperimentCompat(t *testing.T) {
	oldText, err := RunExperiment("fig11", 0.1, 2, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	newText, err := RenderExperiment("fig11", 0.1, 2, 1, FormatText)
	if err != nil {
		t.Fatal(err)
	}
	if oldText != newText {
		t.Fatal("RunExperiment(csv=false) != RenderExperiment(FormatText)")
	}
	oldCSV, err := RunExperiment("fig11", 0.1, 2, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	newCSV, err := RenderExperiment("fig11", 0.1, 2, 1, FormatCSV)
	if err != nil {
		t.Fatal(err)
	}
	if oldCSV != newCSV {
		t.Fatal("RunExperiment(csv=true) != RenderExperiment(FormatCSV)")
	}
	if oldCSV == oldText {
		t.Fatal("csv and text renderings should differ")
	}
}

func TestRenderExperimentBadFormat(t *testing.T) {
	if _, err := RenderExperiment("fig11", 0.1, 2, 1, Format(99)); err == nil {
		t.Fatal("invalid Format accepted")
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{"text": FormatText, "CSV": FormatCSV, "": FormatText} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Fatal("ParseFormat accepted xml")
	}
	if FormatText.String() != "text" || FormatCSV.String() != "csv" {
		t.Fatal("Format.String wrong")
	}
}

func TestValidatePolicy(t *testing.T) {
	for _, name := range Policies() {
		if err := ValidatePolicy(name); err != nil {
			t.Fatalf("ValidatePolicy(%s): %v", name, err)
		}
	}
	err := ValidatePolicy("bogus")
	if err == nil {
		t.Fatal("bogus policy accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown policy "bogus"`) || !strings.Contains(msg, "want one of") || !strings.Contains(msg, PolicySpiderCache) {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestTrainRejectsUnknownPolicyEarly verifies Train fails with the helpful
// top-level error instead of a deep-layer one.
func TestTrainRejectsUnknownPolicyEarly(t *testing.T) {
	ds := tinyCIFAR(t)
	_, err := Train(TrainConfig{Dataset: ds, Policy: "no-such-policy", Epochs: 1})
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	if !strings.Contains(err.Error(), "want one of") {
		t.Fatalf("error does not list accepted names: %v", err)
	}
}

// TestExplicitZeroExpressible covers the zero-value ambiguity the options
// API fixes: an explicit zero is honoured (or rejected), never silently
// replaced by a default.
func TestExplicitZeroExpressible(t *testing.T) {
	ds := tinyCIFAR(t)

	// Explicit zero cache: a genuine no-cache run — every lookup misses.
	// Two epochs, because even a caching run misses everything on first
	// touch; the cache only pays off from epoch 2.
	res, err := TrainWith(ds,
		WithPolicy(PolicyBaseline),
		WithEpochs(2),
		WithCacheFraction(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if hr := res.AvgHitRatio(); hr != 0 {
		t.Fatalf("cache-less run hit ratio = %v, want 0", hr)
	}
	// The struct API cannot express this: zero means "default 0.2".
	legacy, err := Train(TrainConfig{Dataset: ds, Policy: PolicyBaseline, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.AvgHitRatio() == 0 {
		t.Fatal("legacy default-cache run unexpectedly missed everything")
	}

	// Explicit zero epochs: rejected, not reinterpreted as 30.
	if _, err := TrainWith(ds, WithEpochs(0)); err == nil {
		t.Fatal("WithEpochs(0) silently accepted")
	}
}

// TestTrainWithMetrics verifies the registry option records the serving
// path and elastic trajectory.
func TestTrainWithMetrics(t *testing.T) {
	ds := tinyCIFAR(t)
	reg := telemetry.NewRegistry()
	res, err := TrainWith(ds,
		WithPolicy(PolicySpiderCache),
		WithEpochs(2),
		WithSeed(5),
		WithMetrics(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var lookups int64
	for _, src := range []string{"cache", "substitute", "miss"} {
		lookups += snap.Counters[`lookups_total{source="`+src+`"}`]
	}
	wantRequests := int64(2 * ds.Len())
	if lookups != wantRequests {
		t.Fatalf("lookups_total sum = %d, want %d", lookups, wantRequests)
	}
	if got := snap.Gauges["imp_ratio"]; math.Abs(got-res.Epochs[len(res.Epochs)-1].ImpRatio) > 1e-12 {
		t.Fatalf("imp_ratio gauge %v != final epoch ImpRatio %v", got, res.Epochs[len(res.Epochs)-1].ImpRatio)
	}
	remote, ok := snap.Histograms[`fetch_seconds{tier="remote"}`]
	if !ok || remote.Count == 0 || remote.P50 <= 0 || remote.P99 < remote.P50 {
		t.Fatalf("remote fetch histogram wrong: %+v", remote)
	}
	text := reg.Prometheus()
	if !strings.Contains(text, `lookups_total{source="cache"}`) || !strings.Contains(text, "imp_ratio") {
		t.Fatalf("exposition missing serving-path series:\n%s", text)
	}
}
