package spidercache

import (
	"strings"
	"testing"
)

func tinyCIFAR(t *testing.T) *Dataset {
	t.Helper()
	ds, err := NewCIFAR10(0.06, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestDatasetConstructors(t *testing.T) {
	for _, build := range []func() (*Dataset, error){
		func() (*Dataset, error) { return NewCIFAR10(0.05, 1) },
		func() (*Dataset, error) { return NewCIFAR100(0.2, 1) },
		func() (*Dataset, error) { return NewImageNet(0.1, 1) },
	} {
		ds, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if ds.Len() == 0 || ds.Classes() < 2 || ds.Name() == "" || ds.TotalBytes() <= 0 {
			t.Fatalf("dataset accessors wrong: %s len=%d", ds.Name(), ds.Len())
		}
	}
}

func TestRegistries(t *testing.T) {
	if len(Policies()) != 10 {
		t.Fatalf("Policies() = %v", Policies())
	}
	if len(Models()) != 4 {
		t.Fatalf("Models() = %v", Models())
	}
	if len(Experiments()) == 0 {
		t.Fatal("Experiments() empty")
	}
}

func TestTrainDefaults(t *testing.T) {
	res, err := Train(TrainConfig{Dataset: tinyCIFAR(t), Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "SpiderCache" {
		t.Fatalf("default policy %q", res.Policy)
	}
	if res.Model != "ResNet18" || res.Dataset != "CIFAR10-like" {
		t.Fatalf("defaults wrong: %s/%s", res.Model, res.Dataset)
	}
	if len(res.Epochs) != 3 {
		t.Fatalf("epochs %d", len(res.Epochs))
	}
	if res.TotalTime <= 0 || res.BestAcc <= 0 {
		t.Fatal("degenerate result")
	}
	for _, e := range res.Epochs {
		if e.HitRatio < 0 || e.HitRatio > 1 || e.SubRatio > e.HitRatio {
			t.Fatalf("epoch stats inconsistent: %+v", e)
		}
	}
	if res.AvgHitRatio() < 0 || res.AvgHitRatio() > 1 {
		t.Fatal("AvgHitRatio out of range")
	}
}

func TestTrainEveryPolicy(t *testing.T) {
	ds := tinyCIFAR(t)
	for _, pol := range Policies() {
		res, err := Train(TrainConfig{Dataset: ds, Policy: pol, Epochs: 2, Seed: 9})
		if err != nil {
			t.Fatalf("Train(%s): %v", pol, err)
		}
		if len(res.Epochs) != 2 {
			t.Fatalf("%s: epochs %d", pol, len(res.Epochs))
		}
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(TrainConfig{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := Train(TrainConfig{Dataset: tinyCIFAR(t), Policy: "bogus", Epochs: 1}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := Train(TrainConfig{Dataset: tinyCIFAR(t), Model: "LeNet", Epochs: 1}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestTrainElasticKnobs(t *testing.T) {
	res, err := Train(TrainConfig{
		Dataset: tinyCIFAR(t), Epochs: 2, RStart: 0.85, REnd: 0.6, StaticRatio: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Epochs[1].ImpRatio; got != 0.85 {
		t.Fatalf("static imp ratio %g, want 0.85", got)
	}
}

func TestRunExperimentFacade(t *testing.T) {
	out, err := RunExperiment("fig11", 0.1, 2, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fig11") {
		t.Fatalf("rendered report lacks id:\n%s", out)
	}
	csv, err := RunExperiment("fig11", 0.1, 2, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv, ",") {
		t.Fatal("CSV output has no commas")
	}
	if _, err := RunExperiment("bogus", 1, 0, 1, false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestDeterministicFacadeRuns(t *testing.T) {
	run := func() *Result {
		res, err := Train(TrainConfig{Dataset: tinyCIFAR(t), Epochs: 2, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalTime != b.TotalTime || a.FinalAcc != b.FinalAcc {
		t.Fatal("same-seed facade runs differ")
	}
}

func TestResultWriteCSV(t *testing.T) {
	res, err := Train(TrainConfig{Dataset: tinyCIFAR(t), Epochs: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // comment, header, 2 epochs
		t.Fatalf("CSV lines %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "# policy=SpiderCache") {
		t.Fatalf("comment line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "epoch,hit_ratio") {
		t.Fatalf("header %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "0,") || !strings.HasPrefix(lines[3], "1,") {
		t.Fatalf("rows wrong:\n%s", out)
	}
}
