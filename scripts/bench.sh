#!/bin/sh
# Runs the parallel hot-path benchmarks: tensor matmul kernels (serial vs
# parallel vs worker sweep), semantic batch scoring, end-to-end training
# epochs with and without the prefetch pipeline, and the kvserver serving
# path (serial vs pipelined vs MGET wire disciplines).
#
# Default is a -benchtime=1x smoke run (each benchmark executes once, so CI
# catches breakage cheaply). Pass a different -benchtime for real numbers:
#
#   scripts/bench.sh                 # smoke run
#   BENCHTIME=2s scripts/bench.sh    # measurement run
set -eu
cd "$(dirname "$0")/.."

# Preflight: numbers from a tree that fails the verification gate are
# numbers about a different program. SKIP_CHECK=1 skips it when iterating
# on a single benchmark.
if [ "${SKIP_CHECK:-0}" != "1" ]; then
    SKIP_RACE="${SKIP_RACE:-1}" scripts/check.sh
fi

BENCHTIME="${BENCHTIME:-1x}"

go test -run '^$' -bench 'BenchmarkMatMul' -benchtime "$BENCHTIME" ./internal/tensor/
go test -run '^$' -bench 'BenchmarkScoreBatch' -benchtime "$BENCHTIME" ./internal/semgraph/
go test -run '^$' -bench 'BenchmarkEpoch' -benchtime "$BENCHTIME" ./internal/trainer/
go test -run '^$' -bench 'BenchmarkServerGet|BenchmarkStoreGet|BenchmarkStoreResidentGC' -benchmem -benchtime "$BENCHTIME" ./internal/kvserver/

# kvserver throughput smoke: an in-process server driven by the spiderload
# closed-loop generator, once at one-op-per-round-trip and once pipelined.
# Scaled small so CI stays cheap; raise -ops for real measurements.
LOAD_OPS="${LOAD_OPS:-20000}"
go run ./cmd/spiderload -ops "$LOAD_OPS" -conns 2 -pipeline 1
go run ./cmd/spiderload -ops "$LOAD_OPS" -conns 2 -pipeline 16
go run ./cmd/spiderload -ops "$LOAD_OPS" -conns 2 -batch 16

# Store-mode A/B under eviction pressure: the same zipfian workload against
# the mutex+LRU store and the arena+TinyLFU store (capacity deliberately a
# quarter of the key population so admission and eviction quality show up
# in the hit ratio). Persists both run summaries as BENCH_7.json.
AB_OPS="${AB_OPS:-60000}"
ab_mutex="$(mktemp)"
ab_arena="$(mktemp)"
trap 'rm -f "$ab_mutex" "$ab_arena"' EXIT
go run ./cmd/spiderload -ops "$AB_OPS" -conns 2 -capacity 4096 -keys 16384 -zipf 0.99 \
    -json "$ab_mutex"
go run ./cmd/spiderload -ops "$AB_OPS" -conns 2 -capacity 4096 -keys 16384 -zipf 0.99 \
    -store-mode arena -admission tinylfu -json "$ab_arena"
{
    printf '{\n"mutex_lru": '
    cat "$ab_mutex"
    printf ',\n"arena_tinylfu": '
    cat "$ab_arena"
    printf '}\n'
} > BENCH_7.json
echo "wrote BENCH_7.json (mutex+LRU vs arena+TinyLFU A/B)"

# Neighborhood-snapshot A/B: ScoreBatch on a repeated-epoch workload with the
# snapshot cache off vs on at the default drift budget. Persists ns/op,
# SearchKNN calls per epoch, and the snapshot hit rate as BENCH_8.json.
go run ./cmd/spiderbench -snapshot-ab BENCH_8.json

# Semantic-serving A/B: the same capacity-constrained clustered key space
# driven once with exact GETs and once with every read issued as NGET
# against the node-local HNSW index. The exact run's misses are the
# ceiling semantic serving can recover from; the NGET run's summary
# carries the exact/near/miss split and the mean served distance.
# Persists both summaries as BENCH_10.json.
nget_exact="$(mktemp)"
nget_sem="$(mktemp)"
trap 'rm -f "$ab_mutex" "$ab_arena" "$nget_exact" "$nget_sem"' EXIT
go run ./cmd/spiderload -ops "$AB_OPS" -conns 2 -capacity 4096 -keys 16384 -zipf 0.99 \
    -json "$nget_exact"
go run ./cmd/spiderload -ops "$AB_OPS" -conns 2 -capacity 4096 -keys 16384 -zipf 0.99 \
    -nget-mix 1 -nget-threshold 0.3 -embed-dim 16 -embed-clusters 64 -json "$nget_sem"
{
    printf '{\n"exact_get": '
    cat "$nget_exact"
    printf ',\n"nget_semantic": '
    cat "$nget_sem"
    printf '}\n'
} > BENCH_10.json
echo "wrote BENCH_10.json (exact GET vs semantic NGET A/B)"

# Cluster resilience smoke (opt-in: boots real daemon processes and kills
# one mid-run, so it is slower and port-hungry). Persists BENCH_6.json.
#
#   CLUSTER_SMOKE=1 scripts/bench.sh
if [ "${CLUSTER_SMOKE:-0}" = "1" ]; then
    SKIP_CHECK=1 scripts/cluster_smoke.sh
fi
