#!/bin/sh
# Runs the parallel hot-path benchmarks: tensor matmul kernels (serial vs
# parallel vs worker sweep), semantic batch scoring, and end-to-end training
# epochs with and without the prefetch pipeline.
#
# Default is a -benchtime=1x smoke run (each benchmark executes once, so CI
# catches breakage cheaply). Pass a different -benchtime for real numbers:
#
#   scripts/bench.sh                 # smoke run
#   BENCHTIME=2s scripts/bench.sh    # measurement run
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"

go test -run '^$' -bench 'BenchmarkMatMul' -benchtime "$BENCHTIME" ./internal/tensor/
go test -run '^$' -bench 'BenchmarkScoreBatch' -benchtime "$BENCHTIME" ./internal/semgraph/
go test -run '^$' -bench 'BenchmarkEpoch' -benchtime "$BENCHTIME" ./internal/trainer/
