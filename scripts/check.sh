#!/bin/sh
# One-shot verification gate: formatting, module hygiene, build, vet with an
# explicit check list, the project's own static analysis (spiderlint), the
# full test suite, and the race-sensitive subset under -race. Everything CI
# (and a careful human) runs before trusting a tree, in dependency order —
# cheap, syntactic gates first, so failures surface fast.
#
#   scripts/check.sh          # full gate
#   SKIP_RACE=1 scripts/check.sh  # skip the -race subset (slowest stage)
#   RACE_FULL=1 scripts/check.sh  # run the ENTIRE suite under -race, not
#                                 # just the concurrency-sensitive subset
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go mod tidy -diff"
go mod tidy -diff

echo "== go build"
go build ./...

# Explicit vet list: the default set plus the concurrency- and
# cancellation-sensitive analyzers this codebase leans on. Spelled out so a
# toolchain default changing under us never silently drops a check.
echo "== go vet"
go vet \
    -atomic -bools -buildtag -copylocks -errorsas -loopclosure \
    -lostcancel -nilfunc -printf -stdmethods -unreachable -unusedresult \
    ./...

echo "== spiderlint"
go run ./cmd/spiderlint ./...

echo "== go test"
go test ./...

# The arena store's whole claim is GC-free reads: a single allocation per
# GET would silently reintroduce the per-op garbage the design exists to
# eliminate, and nothing else in the suite would notice. Gate on the
# benchmark's own -benchmem accounting.
echo "== arena alloc regression (GET must be 0 allocs/op)"
alloc_out="$(go test -run '^$' -bench 'BenchmarkStoreGet/mode=arena' \
    -benchtime 1000x -benchmem ./internal/kvserver/)"
echo "$alloc_out"
echo "$alloc_out" | awk '
    /BenchmarkStoreGet\/mode=arena/ && / allocs\/op/ {
        if ($(NF-1)+0 != 0) { print "arena GET allocates: " $0 > "/dev/stderr"; bad = 1 }
    }
    END { exit bad }'

if [ "${RACE_FULL:-0}" = "1" ]; then
    # Opt-in: every package under the race detector, not just the curated
    # subset. Slow (the lint framework re-type-checks the module per test),
    # so it is a deliberate pre-release gate rather than the default.
    echo "== go test -race ./... (RACE_FULL)"
    go test -race ./...
elif [ "${SKIP_RACE:-0}" != "1" ]; then
    echo "== go test -race (concurrency-sensitive subset)"
    go test -race \
        ./internal/telemetry/... ./internal/kvserver/... ./internal/epoch/... \
        ./internal/cache/... \
        ./internal/hnsw/... ./internal/semgraph/... ./internal/trainer/... \
        ./internal/par/... ./internal/leakcheck/... \
        ./internal/faultnet/... ./internal/cluster/...
fi

echo "check.sh: all gates passed"
