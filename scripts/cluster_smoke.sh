#!/bin/sh
# Cluster resilience smoke: boots three spiderkv daemons, drives them with
# the spiderload cluster client, SIGKILLs one daemon mid-run, and asserts
# the run ends with ZERO client-visible errors — replication plus
# breaker-gated failover plus gossip discovery must absorb the death.
# The run's throughput/latency summary is persisted as a JSON file.
#
#   scripts/cluster_smoke.sh                 # default: BENCH_6.json
#   OPS=500000 OUT=/tmp/r.json scripts/cluster_smoke.sh
#   PORT_BASE=9461 scripts/cluster_smoke.sh  # if 7461-7463 are taken
set -eu
cd "$(dirname "$0")/.."

PORT_BASE="${PORT_BASE:-7461}"
OPS="${OPS:-150000}"
KEYS="${KEYS:-4000}"
VALUE="${VALUE:-1024}"
OUT="${OUT:-BENCH_6.json}"
KILL_AFTER="${KILL_AFTER:-1}"

TMP="$(mktemp -d)"
P1=""; P2=""; P3=""
cleanup() {
    for p in $P1 $P2 $P3; do
        kill "$p" 2>/dev/null || true
    done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== build"
go build -o "$TMP/spiderkv" ./cmd/spiderkv
go build -o "$TMP/spiderload" ./cmd/spiderload

A1="127.0.0.1:$PORT_BASE"
A2="127.0.0.1:$((PORT_BASE + 1))"
A3="127.0.0.1:$((PORT_BASE + 2))"

echo "== boot 3 daemons ($A1 $A2 $A3)"
"$TMP/spiderkv" -listen "$A1" -gossip 250ms >"$TMP/kv1.log" 2>&1 &
P1=$!
"$TMP/spiderkv" -listen "$A2" -join "$A1" -gossip 250ms >"$TMP/kv2.log" 2>&1 &
P2=$!
"$TMP/spiderkv" -listen "$A3" -join "$A1" -gossip 250ms >"$TMP/kv3.log" 2>&1 &
P3=$!
sleep 1 # let gossip converge before load arrives

echo "== spiderload with a mid-run SIGKILL of daemon 3"
"$TMP/spiderload" -cluster "$A1" -ops "$OPS" -keys "$KEYS" -value "$VALUE" \
    -json "$OUT" >"$TMP/load.log" 2>&1 &
LOAD=$!
sleep "$KILL_AFTER"
if kill -0 "$LOAD" 2>/dev/null; then
    echo "killing daemon 3 (pid $P3) mid-run"
    kill -9 "$P3" 2>/dev/null || true
else
    echo "WARNING: load finished before the kill; raise OPS for a real mid-run kill" >&2
fi

if ! wait "$LOAD"; then
    echo "cluster_smoke: spiderload reported client-visible errors" >&2
    cat "$TMP/load.log" >&2
    exit 1
fi
cat "$TMP/load.log"

echo "== assertions"
if ! grep -q '"client_errors": 0' "$OUT"; then
    echo "cluster_smoke: non-zero client_errors in $OUT" >&2
    exit 1
fi
echo "cluster_smoke: zero client errors through a daemon kill; results in $OUT"
