// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerated at reduced scale so `go test -bench=.` finishes on
// a laptop), plus ablation benchmarks for the design choices called out in
// DESIGN.md §5.
//
// For full-scale paper tables use the spiderbench CLI:
//
//	go run ./cmd/spiderbench -exp all
package spidercache_test

import (
	"testing"

	"spidercache"
	"spidercache/internal/cache"
	"spidercache/internal/dataset"
	"spidercache/internal/experiments"
	"spidercache/internal/hnsw"
	"spidercache/internal/nn"
	"spidercache/internal/policy"
	"spidercache/internal/pq"
	"spidercache/internal/sampler"
	"spidercache/internal/semgraph"
	"spidercache/internal/trainer"
	"spidercache/internal/xrand"
)

// benchOptions shrinks every experiment to benchmark scale.
func benchOptions() experiments.Options {
	return experiments.Options{Scale: 0.12, EpochOverride: 3, Seed: 42}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// --- One benchmark per paper table/figure -------------------------------

func BenchmarkFig3a(b *testing.B)  { runExperiment(b, "fig3a") }
func BenchmarkFig3b(b *testing.B)  { runExperiment(b, "fig3b") }
func BenchmarkFig5(b *testing.B)   { runExperiment(b, "fig5") }
func BenchmarkFig6a(b *testing.B)  { runExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { runExperiment(b, "fig6b") }
func BenchmarkFig6c(b *testing.B)  { runExperiment(b, "fig6c") }
func BenchmarkFig8(b *testing.B)   { runExperiment(b, "fig8") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") } // + Fig 12
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") } // + Fig 13
func BenchmarkFig14(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "table4") } // + Fig 15, Table 5
func BenchmarkTable6(b *testing.B) { runExperiment(b, "table6") } // + Fig 16
func BenchmarkFig17(b *testing.B)  { runExperiment(b, "fig17") }

// --- End-to-end policy benchmarks (per-epoch cost of each strategy) -----

func benchTrain(b *testing.B, pol string) {
	b.Helper()
	ds, err := spidercache.NewCIFAR10(0.12, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spidercache.Train(spidercache.TrainConfig{
			Dataset: ds, Policy: pol, Epochs: 3, Seed: 42,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainSpiderCache(b *testing.B) { benchTrain(b, spidercache.PolicySpiderCache) }
func BenchmarkTrainSHADE(b *testing.B)       { benchTrain(b, spidercache.PolicySHADE) }
func BenchmarkTrainICache(b *testing.B)      { benchTrain(b, spidercache.PolicyICache) }
func BenchmarkTrainBaseline(b *testing.B)    { benchTrain(b, spidercache.PolicyBaseline) }

// --- Ablation benchmarks (DESIGN.md §5) ----------------------------------

// BenchmarkAblationEviction compares the min-heap Importance cache against a
// naive full-rescan eviction at the same workload.
func BenchmarkAblationEviction(b *testing.B) {
	const capacity, universe = 1000, 10000
	rng := xrand.New(1)
	ids := make([]int, 50000)
	scores := make([]float64, len(ids))
	for i := range ids {
		ids[i] = rng.Intn(universe)
		scores[i] = rng.Float64()
	}
	b.Run("min-heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := cache.NewImportance(capacity)
			for j, id := range ids {
				c.Put(cache.Item{ID: id}, scores[j])
			}
		}
	})
	b.Run("rescan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			type entry struct {
				id    int
				score float64
			}
			m := make(map[int]entry, capacity)
			for j, id := range ids {
				if e, ok := m[id]; ok {
					e.score = scores[j]
					m[id] = e
					continue
				}
				if len(m) >= capacity {
					minID, minScore := -1, 2.0
					for _, e := range m { // O(capacity) rescan per eviction
						if e.score < minScore {
							minID, minScore = e.id, e.score
						}
					}
					if minScore >= scores[j] {
						continue
					}
					delete(m, minID)
				}
				m[id] = entry{id: id, score: scores[j]}
			}
		}
	})
}

// BenchmarkAblationMultinomial compares the alias method against a linear
// cumulative scan for one epoch of draws.
func BenchmarkAblationMultinomial(b *testing.B) {
	const n = 4000
	rng := xrand.New(2)
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = rng.Float64()
	}
	b.Run("alias", func(b *testing.B) {
		r := xrand.New(3)
		for i := 0; i < b.N; i++ {
			tab := sampler.NewAlias(weights, r)
			for d := 0; d < n; d++ {
				tab.Draw()
			}
		}
	})
	b.Run("linear-scan", func(b *testing.B) {
		r := xrand.New(3)
		var total float64
		for _, w := range weights {
			total += w
		}
		for i := 0; i < b.N; i++ {
			for d := 0; d < n; d++ {
				target := r.Float64() * total
				for _, w := range weights {
					target -= w
					if target <= 0 {
						break
					}
				}
			}
		}
	})
}

// BenchmarkAblationANN compares HNSW against exact brute-force kNN as the
// semantic graph's neighbour searcher.
func BenchmarkAblationANN(b *testing.B) {
	const n, dim, k = 4000, 32, 24
	rng := xrand.New(4)
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	build := func(s semgraph.NeighborSearcher) {
		for i, v := range vecs {
			if err := s.Upsert(i, v); err != nil {
				b.Fatal(err)
			}
		}
	}
	hx, _ := hnsw.New(hnsw.DefaultConfig())
	build(hx)
	bf := semgraph.NewBruteSearcher()
	build(bf)
	pqs, err := semgraph.NewPQSearcher(pq.DefaultConfig(), 1000)
	if err != nil {
		b.Fatal(err)
	}
	build(pqs)
	b.Run("hnsw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hx.SearchKNN(vecs[i%n], k)
		}
	})
	b.Run("brute-force", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bf.SearchKNN(vecs[i%n], k)
		}
	})
	b.Run("pq-adc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pqs.SearchKNN(vecs[i%n], k)
		}
	})
}

// BenchmarkAblationPipeline measures the simulated epoch-time impact of the
// Fig 12 IS pipeline (on vs off) for a long-IS model (VGG16).
func BenchmarkAblationPipeline(b *testing.B) {
	ds, err := dataset.New(dataset.CIFAR10Like(0.12, 42))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, pipeline bool) {
		for i := 0; i < b.N; i++ {
			pol, err := experiments.BuildPolicy("spider", experiments.PolicyParams{
				Dataset: ds, Capacity: ds.Len() / 5, Epochs: 2, Seed: 42,
			})
			if err != nil {
				b.Fatal(err)
			}
			cfg := trainer.Config{
				Dataset: ds, Model: nn.VGG16, Epochs: 2, BatchSize: 64,
				Workers: 1, PipelineIS: pipeline, Seed: 42,
			}
			res, err := trainer.Run(cfg, pol)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.TotalTime.Seconds(), "simsec")
		}
	}
	b.Run("pipeline-on", func(b *testing.B) { run(b, true) })
	b.Run("pipeline-off", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationHomophily isolates the Homophily Cache's contribution:
// full SpiderCache vs the importance-only ablation at the same budget.
func BenchmarkAblationHomophily(b *testing.B) {
	ds, err := dataset.New(dataset.CIFAR10Like(0.12, 42))
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, name string) {
		for i := 0; i < b.N; i++ {
			pol, err := experiments.BuildPolicy(name, experiments.PolicyParams{
				Dataset: ds, Capacity: ds.Len() / 5, Epochs: 3, Seed: 42,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := trainer.Run(trainer.Config{
				Dataset: ds, Model: nn.ResNet18, Epochs: 3, BatchSize: 64,
				Workers: 1, PipelineIS: true, Seed: 42,
			}, pol)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.AvgHitRatio()*100, "hit%")
		}
	}
	b.Run("full", func(b *testing.B) { run(b, "spider") })
	b.Run("imp-only", func(b *testing.B) { run(b, "spider-imp") })
}

// BenchmarkGraphIS measures the per-batch cost of the graph-based IS stage
// (update + score for a 64-sample batch), the quantity the paper's Table 1
// reports as "IS".
func BenchmarkGraphIS(b *testing.B) {
	const n, dim, batch = 4000, 32, 64
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 10
	}
	idx, _ := hnsw.New(hnsw.DefaultConfig())
	g, err := semgraph.New(semgraph.DefaultConfig(), labels, idx)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(5)
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64(labels[i]) + rng.NormFloat64()*0.3
		}
		vecs[i] = v
		g.Update(i, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (i * batch) % (n - batch)
		for s := 0; s < batch; s++ {
			id := base + s
			if err := g.Update(id, vecs[id]); err != nil {
				b.Fatal(err)
			}
			if _, err := g.Score(id, vecs[id]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkLookupPath measures the full two-layer cache lookup of Algorithm
// 1 (Importance Cache, then Homophily neighbour lists).
func BenchmarkLookupPath(b *testing.B) {
	imp := cache.NewImportance(800)
	hom := cache.NewHomophily(200)
	rng := xrand.New(6)
	for i := 0; i < 800; i++ {
		imp.Put(cache.Item{ID: i}, rng.Float64())
	}
	for i := 0; i < 200; i++ {
		nbs := make([]int, 8)
		for j := range nbs {
			nbs[j] = 1000 + rng.Intn(2000)
		}
		hom.Put(cache.Item{ID: 5000 + i}, nbs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := rng.Intn(4000)
		if _, ok := imp.Get(id); ok {
			continue
		}
		hom.LookupNeighbor(id)
	}
}

// Guard: the policy registry stays in sync with the facade constants.
func TestBenchPoliciesExist(t *testing.T) {
	for _, name := range []string{spidercache.PolicySpiderCache, spidercache.PolicySHADE,
		spidercache.PolicyICache, spidercache.PolicyBaseline} {
		found := false
		for _, p := range spidercache.Policies() {
			if p == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("policy %s missing from registry", name)
		}
	}
	// The bench option scale must build a valid workload.
	if _, err := dataset.New(dataset.CIFAR10Like(benchOptions().Scale, 1)); err != nil {
		t.Fatal(err)
	}
	// Silence unused-import style drift if policy package types change.
	var _ policy.Source = policy.SourceMiss
}
